// Distance-row provider + the width-and-budget policy — the one interface
// behind "how do I get distance rows, and under what memory budget".
//
// Before this layer, every tier answered that question by convention:
// SwapEngine allocated a full n×n masked matrix per scan, SearchState its
// n·deg row slabs, certify_sharded copied the engine's width knob, the svc
// worker another, and nothing said how much memory a scan was allowed to
// use. ResourceConfig makes the answer explicit and shared:
//
//   width      — the storage-width preference (graph/dist_width.hpp),
//   mem_budget — a byte budget for distance-row storage (0 = take
//                BNCG_MEM_BUDGET from the environment; unset = unlimited),
//   force_naive— route the accelerated tiers to the exact naive oracles
//                (OR-ed with BNCG_FORCE_NAIVE, the historical env toggle).
//
// WidthAndBudgetPolicy turns a ResourceConfig into the two decisions the
// scan tiers need: which width to prefer (absorbing the diameter probe that
// lived in SwapEngine::rebuild and the matrix-driven
// DistanceMatrix::recommended_width()), and whether a dense n×n scan slab
// fits the per-lane budget share — when it does not, the scan runs in
// BUDGETED mode against the blocked row cache (graph/row_cache.hpp), where
// rows materialize on demand by exact BFS and an eccentricity/landmark
// bound proves most rows can never affect the verdict, so they are never
// materialized (DESIGN.md §16). Both modes are exact; the differential
// suite (tests/test_row_cache.cpp) pins byte-parity.
//
// DistanceProvider<Dist> is the uniform row source of one agent scan:
// dense mode materializes the full masked matrix up front (the small-n
// fast path, bit-identical to the historical scan), budgeted mode opens a
// row-cache context and serves rows lazily under the budget.
#pragma once

#include <cstdint>
#include <string>

#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"
#include "graph/dist_width.hpp"
#include "graph/row_cache.hpp"
#include "util/simd.hpp"

namespace bncg {

/// The shared resource knobs of every scan tier (engine, search state,
/// sharded certifier, svc worker, facade). Replaces the per-config
/// width/naive toggles that AnnealConfig, DynamicsConfig, and the worker
/// ConnectConfig each grew separately.
struct ResourceConfig {
  /// Distance storage width preference; results are width-independent.
  WidthPolicy width = WidthPolicy::Auto;
  /// Byte budget for distance-row storage per process. 0 = consult
  /// BNCG_MEM_BUDGET (bytes, with optional K/M/G binary suffix); when that
  /// is unset too, storage is unlimited and every tier keeps its dense
  /// fast path. The budget is shared evenly across scan lanes.
  std::uint64_t mem_budget = 0;
  /// Route the public certifier tiers to the exact naive oracles (OR-ed
  /// with the BNCG_FORCE_NAIVE environment toggle).
  bool force_naive = false;
};

/// Parses a byte count with optional binary suffix: "1073741824", "512K",
/// "256M", "2G". Throws std::invalid_argument on anything else.
[[nodiscard]] std::uint64_t parse_mem_bytes(const std::string& text);

/// BNCG_MEM_BUDGET parsed once per process; 0 when unset/empty.
[[nodiscard]] std::uint64_t env_mem_budget();

/// The budget a ResourceConfig resolves to: explicit field, else env, else
/// 0 (= unlimited).
[[nodiscard]] std::uint64_t resolved_mem_budget(const ResourceConfig& config);

/// Whether a scan materializes its rows densely or through the budgeted
/// row cache.
enum class RowStorage : std::uint8_t { Dense, Budgeted };

/// The resolved resource decisions of one instance: width preference and
/// dense-vs-budgeted storage per width. One policy object per engine/state
/// rebuild; cheap value type.
class WidthAndBudgetPolicy {
 public:
  WidthAndBudgetPolicy() = default;
  /// Resolves the budget and splits it across `lanes` scan lanes (0 =
  /// the process thread-pool size). Every scan lane owns its own scratch,
  /// so the per-lane share is what a dense slab must fit into.
  explicit WidthAndBudgetPolicy(const ResourceConfig& config, unsigned lanes = 0);

  [[nodiscard]] WidthPolicy width_policy() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total_budget() const noexcept { return total_budget_; }
  /// Per-lane budget share (0 = unlimited).
  [[nodiscard]] std::uint64_t lane_budget() const noexcept { return lane_budget_; }

  /// Exact width for a known maximum finite distance — the policy form of
  /// the retired DistanceMatrix::recommended_width(): callers already
  /// holding a matrix (or a diameter) seed Force policies from it instead
  /// of re-probing (search.cpp / dynamics.cpp / metrics-driven sites).
  [[nodiscard]] static DistWidth width_for_max_distance(std::uint64_t max_distance) noexcept {
    return max_distance <= kMaxFiniteFor<std::uint8_t> ? DistWidth::U8 : DistWidth::U16;
  }
  /// The matching WidthPolicy seed (ForceU8 only when provably safe under
  /// the masked-sweep fallback contract; ForceU16 otherwise).
  [[nodiscard]] static WidthPolicy policy_for_max_distance(std::uint64_t max_distance) noexcept {
    return width_for_max_distance(max_distance) == DistWidth::U8 ? WidthPolicy::ForceU8
                                                                 : WidthPolicy::ForceU16;
  }

  /// The width-preference probe every scan tier used to duplicate: one BFS
  /// from vertex 0 bounds the diameter by 2·ecc(0); u8 is preferred under
  /// the configured policy when that bound fits the narrow encoding.
  /// Masked per-agent sweeps can still exceed the bound — the per-agent
  /// u16 fallback absorbs those exactly. Works at any n (the traversal is
  /// saturation-checked, not 16-bit-limited).
  [[nodiscard]] bool probe_prefers_u8(const CsrGraph& csr, BatchBfsWorkspace& ws) const;

  /// True when a dense n×n scan slab at width `w` fits the per-lane budget
  /// (and the dense scan's 16-bit encoding limit n < 65535 holds). False
  /// selects RowStorage::Budgeted for that width.
  [[nodiscard]] bool dense_fits(Vertex n, DistWidth w) const noexcept;
  [[nodiscard]] RowStorage storage_for(Vertex n, DistWidth w) const noexcept {
    return dense_fits(n, w) ? RowStorage::Dense : RowStorage::Budgeted;
  }

 private:
  WidthPolicy width_ = WidthPolicy::Auto;
  std::uint64_t total_budget_ = 0;
  std::uint64_t lane_budget_ = 0;
};

/// Uniform row source of one agent scan at storage width `Dist`.
///
/// Dense mode: begin() materializes the full masked matrix into the
/// caller's slab by one capped APSP — the historical scan storage, chosen
/// by the policy whenever it fits the lane budget. Budgeted mode: begin()
/// opens a RowCache context; rows materialize on the first touch and live
/// under the byte budget with block-LRU eviction.
///
/// In both modes row() returns exact distances of the masked snapshot
/// (nullptr on width saturation — the caller redoes the scan wider), and
/// in both modes a returned pointer stays valid until the next
/// materializing call (dense pointers live until the next begin()).
template <typename Dist>
class DistanceProvider {
 public:
  /// Prepares a scan context over `csr` with `masked_vertex` removed.
  /// Returns false on width saturation (dense mode only — budgeted mode
  /// saturates lazily, at the failing row() / prefetch()).
  [[nodiscard]] bool begin(const CsrGraph& csr, Vertex masked_vertex, Dist inf_value,
                           Dist max_finite, RowStorage storage, std::uint64_t budget_bytes,
                           AlignedVec<Dist>& dense_slab, BatchBfsWorkspace& ws);

  [[nodiscard]] RowStorage storage() const noexcept { return storage_; }

  /// Row of `source` in the current context; nullptr on width saturation.
  [[nodiscard]] const Dist* row(Vertex source, BatchBfsWorkspace& ws);

  /// Batch-materializes missing rows (budgeted mode; dense mode is a
  /// no-op — everything is already resident). False on saturation.
  [[nodiscard]] bool prefetch(std::span<const Vertex> sources, BatchBfsWorkspace& ws);

  /// Budgeted-mode introspection (dense mode: trivially true / all rows).
  [[nodiscard]] bool resident(Vertex source) const;

  /// The cache behind budgeted mode (REQUIREs budgeted mode) — stats and
  /// residency introspection for benches and the differential suite.
  [[nodiscard]] const RowCache<Dist>& cache() const;
  [[nodiscard]] RowCache<Dist>& cache();
  /// Cache counters regardless of mode (all-zero if budgeted mode never ran).
  [[nodiscard]] const RowCacheStats& cache_stats() const noexcept { return cache_.stats(); }

 private:
  RowStorage storage_ = RowStorage::Dense;
  const CsrGraph* csr_ = nullptr;
  const Dist* dense_ = nullptr;
  Vertex n_ = 0;
  RowCache<Dist> cache_;
  bool cache_configured_ = false;
  std::uint64_t cache_budget_ = 0;
  Vertex cache_n_ = 0;
};

extern template class DistanceProvider<std::uint8_t>;
extern template class DistanceProvider<std::uint16_t>;

}  // namespace bncg

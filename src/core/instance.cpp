#include "core/instance.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/dynamics.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {

Instance::Instance(Graph g) : graph_(std::move(g)) {}

Instance Instance::load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  try {
    return read_edge_list(in);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("bad graph file " + path + ": " + e.what());
  }
}

Instance Instance::read_edge_list(std::istream& in) { return Instance(bncg::read_edge_list(in)); }

Instance Instance::gnm(Vertex n, std::size_t m, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return Instance(random_connected_gnm(n, m, rng));
}

Instance Instance::torus(Vertex k) { return Instance(rotated_torus(k).graph()); }

std::uint64_t Instance::fingerprint() const {
  if (!fingerprint_cached_) {
    fingerprint_ = graph_fingerprint(graph_);
    fingerprint_cached_ = true;
  }
  return fingerprint_;
}

ShardedCertificate Instance::certify(const RunConfig& run) const {
  ShardedCertifyConfig config;
  config.shards = run.shards;
  config.stop_on_violation = run.stop_on_violation;
  config.resources = run.resources;
  return certify_sharded(graph_, run.model, run.include_deletions, config);
}

DynamicsResult Instance::equilibrate(const RunConfig& run) const {
  return equilibrate(run, DynamicsConfig{});
}

DynamicsResult Instance::equilibrate(const RunConfig& run, DynamicsConfig config) const {
  config.cost = run.model;
  config.allow_neutral_deletions = run.include_deletions;
  config.max_moves = run.max_moves;
  config.seed = run.seed;
  config.resources = run.resources;
  return run_dynamics(graph_, config);
}

std::uint64_t Instance::social_cost(UsageCost model) const {
  return bncg::social_cost(graph_, model);
}

Vertex Instance::diameter() const { return bncg::diameter(graph_); }

}  // namespace bncg

#include "core/search.hpp"

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/search_state.hpp"
#include "core/swap_engine.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"

namespace bncg {

namespace {

/// Unrest contribution of one agent's best deviation: the improvement when
/// there is one (≥ 1 for improving swaps), and a floor of 1 for violations
/// that improve nothing (the max model's cost-neutral deletions) — so every
/// certifier violation is visible in the potential. Matches
/// SearchState::unrest term for term.
std::uint64_t deviation_unrest(const std::optional<Deviation>& dev) {
  if (!dev) return 0;
  const std::uint64_t gain =
      dev->cost_before > dev->cost_after ? dev->cost_before - dev->cost_after : 0;
  return std::max<std::uint64_t>(1, gain);
}

}  // namespace

std::uint64_t sum_unrest(const Graph& g) {
  std::uint64_t total = 0;
  if (swap_engine_enabled(g)) {
    // One CSR snapshot serves every agent's scan (the public per-agent API
    // would rebuild it n times).
    SwapEngine engine(g);
    SwapEngine::Scratch scratch;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      total += deviation_unrest(engine.best_deviation(v, UsageCost::Sum, scratch));
    }
    return total;
  }
  BfsWorkspace ws;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    total += deviation_unrest(naive::best_sum_deviation(g, v, ws));
  }
  return total;
}

std::uint64_t max_unrest(const Graph& g) {
  std::uint64_t total = 0;
  if (swap_engine_enabled(g)) {
    SwapEngine engine(g);
    SwapEngine::Scratch scratch;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      total += deviation_unrest(
          engine.best_deviation(v, UsageCost::Max, scratch, /*include_deletions=*/true));
    }
    return total;
  }
  BfsWorkspace ws;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    total += deviation_unrest(
        naive::best_max_deviation(g, v, ws, /*include_deletions=*/true));
  }
  return total;
}

std::optional<Graph> anneal_equilibrium(Graph start, const AnnealConfig& config,
                                        AnnealStats* stats) {
  const Vertex n = start.num_vertices();
  BNCG_REQUIRE(n >= 2, "search needs at least two vertices");
  AnnealStats local_stats;
  AnnealStats& st = stats != nullptr ? *stats : local_stats;
  st = AnnealStats{};  // reset up front so every exit reports this run
  Xoshiro256ss rng(config.seed);

  // Nudge the start onto the diameter constraint if it is off it: add edges
  // while too spread out, remove removable edges while too tight.
  int guard = 0;
  while (diameter(start) != config.target_diameter && guard++ < 4000) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    const Vertex d = diameter(start);
    if (d == kInfDist || d > config.target_diameter) {
      start.add_edge_if_absent(u, v);
    } else if (start.has_edge(u, v)) {
      start.remove_edge(u, v);
      if (!is_connected(start)) start.add_edge(u, v);
    }
  }
  if (diameter(start) != config.target_diameter) return std::nullopt;

  const bool incremental =
      config.evaluation == UnrestEval::Incremental ||
      (config.evaluation == UnrestEval::Auto && search_state_enabled(start));

  const auto unrest_of = [&](const Graph& g) {
    return config.cost == UsageCost::Sum ? sum_unrest(g) : max_unrest(g);
  };

  // Both evaluation paths run the exact same proposal/acceptance schedule —
  // same rng draws in the same order, same filter semantics, same unrest
  // values — so trajectories are identical (differential-tested in
  // tests/test_search_state.cpp and the search bench).
  if (incremental) {
    // Width seed: the nudge loop above just proved the diameter equals the
    // target, so under Auto the storage width follows from the unified
    // policy (ForceU8 exactly when the target diameter fits the narrow
    // encoding) instead of the state's own ecc(0) screen — one less probe,
    // identical trajectories (saturation still promotes exactly).
    WidthPolicy width =
        config.resources.width != WidthPolicy::Auto ? config.resources.width : config.dist_width;
    if (width == WidthPolicy::Auto) {
      width = WidthAndBudgetPolicy::policy_for_max_distance(config.target_diameter);
    }
    SearchState state(std::move(start), config.cost,
                      /*include_deletions=*/config.cost == UsageCost::Max,
                      /*parallel=*/true, width);
    std::uint64_t current_unrest = state.unrest();
    double temperature = config.initial_temperature;
    for (std::uint64_t step = 0; step < config.steps && current_unrest > 0; ++step) {
      temperature *= config.cooling;
      const Vertex u = static_cast<Vertex>(rng.below(n));
      const Vertex v = static_cast<Vertex>(rng.below(n));
      if (u == v) continue;
      ++st.proposals;
      const ToggleShape shape = state.propose_toggle(u, v);
      if (!shape.connected || shape.diameter != config.target_diameter) {
        ++st.filtered;
        continue;
      }
      const std::uint64_t proposal_unrest = state.proposal_unrest();
      ++st.evaluated;
      const double delta =
          static_cast<double>(proposal_unrest) - static_cast<double>(current_unrest);
      if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
        state.commit();
        current_unrest = proposal_unrest;
        ++st.accepted;
      }
    }
    st.final_unrest = current_unrest;
    st.dist_width = state.width();
    st.width_promotions = state.stats().promotions;
    if (current_unrest == 0) return state.graph();
    return std::nullopt;
  }

  Graph current = std::move(start);
  std::uint64_t current_unrest = unrest_of(current);
  double temperature = config.initial_temperature;

  for (std::uint64_t step = 0; step < config.steps && current_unrest > 0; ++step) {
    temperature *= config.cooling;
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    ++st.proposals;
    Graph proposal = current;
    if (proposal.has_edge(u, v)) {
      proposal.remove_edge(u, v);
    } else {
      proposal.add_edge(u, v);
    }
    if (!is_connected(proposal) || diameter(proposal) != config.target_diameter) {
      ++st.filtered;
      continue;
    }
    const std::uint64_t proposal_unrest = unrest_of(proposal);
    ++st.evaluated;
    const double delta =
        static_cast<double>(proposal_unrest) - static_cast<double>(current_unrest);
    if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
      current = std::move(proposal);
      current_unrest = proposal_unrest;
      ++st.accepted;
    }
  }
  st.final_unrest = current_unrest;
  if (current_unrest == 0) return current;
  return std::nullopt;
}

std::optional<Graph> anneal_sum_equilibrium(Graph start, const AnnealConfig& config) {
  AnnealConfig sum_config = config;
  sum_config.cost = UsageCost::Sum;
  return anneal_equilibrium(std::move(start), sum_config);
}

std::optional<Graph> exhaustive_diameter3_sum_equilibrium(Vertex n) {
  BNCG_REQUIRE(n >= 2 && n <= 7, "exhaustive search supported for n <= 7");
  // Enumerate all edge subsets over the C(n,2) vertex pairs. Cheap filters
  // first (edge count, connectivity, diameter), full certification last.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
  }
  const std::uint32_t num_pairs = static_cast<std::uint32_t>(pairs.size());
  BfsWorkspace ws;
  for (std::uint32_t mask = 0; mask < (1u << num_pairs); ++mask) {
    // Diameter 3 needs at least n−1 edges (connectivity) and at least one
    // non-adjacent pair, so skip masks outside [n−1, C(n,2) − 1] edges.
    const int bits = __builtin_popcount(mask);
    if (bits < static_cast<int>(n) - 1 || bits >= static_cast<int>(num_pairs)) continue;
    Graph g(n);
    for (std::uint32_t i = 0; i < num_pairs; ++i) {
      if (mask & (1u << i)) g.add_edge(pairs[i].first, pairs[i].second);
    }
    if (!bfs(g, 0, ws).spans(n)) continue;
    if (diameter(g) != 3) continue;
    bool stable = true;
    for (Vertex v = 0; v < n && stable; ++v) {
      // The allocation-free oracle wins at n ≤ 7: a SwapEngine build per
      // enumerated graph (millions of them) would be pure overhead.
      stable = !naive::first_sum_deviation(g, v, ws).has_value();
    }
    if (stable) return g;
  }
  return std::nullopt;
}

}  // namespace bncg

#include "core/equilibrium.hpp"

#include <algorithm>

#include "core/swap_engine.hpp"
#include "graph/apsp.hpp"
#include "graph/metrics.hpp"
#include "util/thread_pool.hpp"

namespace bncg {

namespace {

/// Shared body for the per-agent sum-model scans (brute-force oracle).
/// Works on a private copy of the graph so tentative swaps never touch the
/// caller's instance. `stop_at_first` returns the first improving swap
/// instead of the best.
std::optional<Deviation> sum_deviation_impl(const Graph& g, Vertex v, BfsWorkspace& ws,
                                            bool stop_at_first,
                                            std::uint64_t* moves_checked = nullptr) {
  g.check_vertex(v);
  Graph work = g;
  const Vertex n = work.num_vertices();
  const std::uint64_t old_cost = vertex_cost(work, v, UsageCost::Sum, ws);

  std::optional<Deviation> best;
  // Copy the neighbor list: ScopedSwap mutates adjacency during iteration.
  const std::vector<Vertex> nbrs(work.neighbors(v).begin(), work.neighbors(v).end());
  for (const Vertex w : nbrs) {
    for (Vertex w2 = 0; w2 < n; ++w2) {
      // Pure deletions (w2 adjacent or w2 == w) never decrease a distance
      // sum, so the sum model only scans swaps introducing a new edge.
      if (w2 == v || w2 == w || work.has_edge(v, w2)) continue;
      if (moves_checked != nullptr) ++*moves_checked;
      const ScopedSwap swap(work, {v, w, w2});
      const std::uint64_t new_cost = vertex_cost(work, v, UsageCost::Sum, ws);
      if (new_cost >= old_cost) continue;
      if (!best || new_cost < best->cost_after) {
        best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
        if (stop_at_first) return best;
      }
    }
  }
  return best;
}

/// Shared body for the per-agent max-model scans (brute-force oracle). Uses
/// the bounded-BFS early exit: a swap improves iff the whole graph is
/// reachable from v within old_ecc − 1 after the swap, and that same
/// truncated traversal already yields the exact new eccentricity.
std::optional<Deviation> max_deviation_impl(const Graph& g, Vertex v, BfsWorkspace& ws,
                                            bool stop_at_first, bool include_deletions,
                                            std::uint64_t* moves_checked = nullptr) {
  g.check_vertex(v);
  Graph work = g;
  const Vertex n = work.num_vertices();
  const std::uint64_t old_cost = vertex_cost(work, v, UsageCost::Max, ws);

  std::optional<Deviation> best;
  const std::vector<Vertex> nbrs(work.neighbors(v).begin(), work.neighbors(v).end());
  for (const Vertex w : nbrs) {
    if (include_deletions) {
      // Deletion clause of max equilibrium: removing {v, w} must *strictly*
      // increase v's local diameter. Equal cost is already a violation.
      if (moves_checked != nullptr) ++*moves_checked;
      work.remove_edge(v, w);
      const std::uint64_t del_cost = vertex_cost(work, v, UsageCost::Max, ws);
      work.add_edge(v, w);
      if (del_cost <= old_cost) {
        const Deviation dev{{v, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (stop_at_first) return best;
      }
    }
    for (Vertex w2 = 0; w2 < n; ++w2) {
      // Swapping onto an existing edge is a deletion; deletions never
      // decrease eccentricity, so only fresh edges can improve.
      if (w2 == v || w2 == w || work.has_edge(v, w2)) continue;
      if (moves_checked != nullptr) ++*moves_checked;
      const ScopedSwap swap(work, {v, w, w2});
      std::optional<std::uint64_t> bounded;
      if (old_cost == kInfCost) {
        const std::uint64_t c = vertex_cost(work, v, UsageCost::Max, ws);
        if (c != kInfCost) bounded = c;
      } else {
        bounded = vertex_cost_within(work, v, UsageCost::Max, old_cost - 1, ws);
      }
      if (!bounded) continue;
      const std::uint64_t new_cost = *bounded;
      if (!best || new_cost < best->cost_after ||
          (best->kind == Deviation::Kind::NonCriticalDelete &&
           new_cost <= best->cost_after)) {
        best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
        if (stop_at_first) return best;
      }
    }
  }
  return best;
}

/// Generic parallel certifier: runs `scan(vertex)` for every vertex, keeping
/// the deviation with the smallest post-move cost. Per-agent results are
/// folded serially so the witness tie-break (earliest agent among equal
/// cost_after) is deterministic under any lane count; per-lane move counts
/// (padded — they're bumped per candidate) sum commutatively.
template <typename ScanFn>
EquilibriumCertificate certify_impl(const Graph& g, ScanFn scan) {
  const Vertex n = g.num_vertices();
  EquilibriumCertificate cert;
  std::uint64_t moves = 0;
  std::vector<std::optional<Deviation>> per_agent(n);

  ThreadPool& pool = ThreadPool::global();
  struct alignas(64) LaneCount {
    std::uint64_t moves = 0;
  };
  std::vector<LaneCount> lane_moves(pool.size());
  {
    std::vector<BfsWorkspace> ws(pool.size());
    pool.parallel_for(n, 1, [&](std::uint64_t v, unsigned tid) {
      per_agent[v] = scan(static_cast<Vertex>(v), ws[tid], lane_moves[tid].moves);
    });
  }
  for (const LaneCount& lane : lane_moves) moves += lane.moves;

  std::optional<Deviation> best;
  for (Vertex v = 0; v < n; ++v) {
    const auto& dev = per_agent[v];
    if (dev && (!best || dev->cost_after < best->cost_after)) best = dev;
  }

  cert.moves_checked = moves;
  cert.witness = best;
  cert.is_equilibrium = !best.has_value();
  return cert;
}

}  // namespace

namespace naive {

std::optional<Deviation> best_sum_deviation(const Graph& g, Vertex v, BfsWorkspace& ws) {
  return sum_deviation_impl(g, v, ws, /*stop_at_first=*/false);
}

std::optional<Deviation> first_sum_deviation(const Graph& g, Vertex v, BfsWorkspace& ws) {
  return sum_deviation_impl(g, v, ws, /*stop_at_first=*/true);
}

std::optional<Deviation> best_max_deviation(const Graph& g, Vertex v, BfsWorkspace& ws,
                                            bool include_deletions) {
  return max_deviation_impl(g, v, ws, /*stop_at_first=*/false, include_deletions);
}

std::optional<Deviation> first_max_deviation(const Graph& g, Vertex v, BfsWorkspace& ws,
                                             bool include_deletions) {
  return max_deviation_impl(g, v, ws, /*stop_at_first=*/true, include_deletions);
}

EquilibriumCertificate certify_sum_equilibrium(const Graph& g) {
  return certify_impl(g, [&g](Vertex v, BfsWorkspace& ws, std::uint64_t& moves) {
    return sum_deviation_impl(g, v, ws, /*stop_at_first=*/false, &moves);
  });
}

EquilibriumCertificate certify_max_equilibrium(const Graph& g) {
  return certify_impl(g, [&g](Vertex v, BfsWorkspace& ws, std::uint64_t& moves) {
    return max_deviation_impl(g, v, ws, /*stop_at_first=*/false, /*include_deletions=*/true,
                              &moves);
  });
}

}  // namespace naive

std::optional<Deviation> best_sum_deviation(const Graph& g, Vertex v, BfsWorkspace& ws) {
  if (!swap_engine_enabled(g)) return naive::best_sum_deviation(g, v, ws);
  SwapEngine engine(g);
  return engine.best_deviation(v, UsageCost::Sum);
}

std::optional<Deviation> first_sum_deviation(const Graph& g, Vertex v, BfsWorkspace& ws) {
  if (!swap_engine_enabled(g)) return naive::first_sum_deviation(g, v, ws);
  SwapEngine engine(g);
  return engine.first_deviation(v, UsageCost::Sum);
}

std::optional<Deviation> best_max_deviation(const Graph& g, Vertex v, BfsWorkspace& ws) {
  if (!swap_engine_enabled(g)) return naive::best_max_deviation(g, v, ws);
  SwapEngine engine(g);
  return engine.best_deviation(v, UsageCost::Max);
}

std::optional<Deviation> first_max_deviation(const Graph& g, Vertex v, BfsWorkspace& ws,
                                             bool include_deletions) {
  if (!swap_engine_enabled(g)) return naive::first_max_deviation(g, v, ws, include_deletions);
  SwapEngine engine(g);
  return engine.first_deviation(v, UsageCost::Max, include_deletions);
}

EquilibriumCertificate certify_sum_equilibrium(const Graph& g) {
  if (!swap_engine_enabled(g)) return naive::certify_sum_equilibrium(g);
  const SwapEngine engine(g);
  return engine.certify(UsageCost::Sum, /*include_deletions=*/false);
}

EquilibriumCertificate certify_max_equilibrium(const Graph& g) {
  if (!swap_engine_enabled(g)) return naive::certify_max_equilibrium(g);
  const SwapEngine engine(g);
  return engine.certify(UsageCost::Max, /*include_deletions=*/true);
}

bool is_sum_equilibrium(const Graph& g) { return certify_sum_equilibrium(g).is_equilibrium; }

bool is_max_equilibrium(const Graph& g) { return certify_max_equilibrium(g).is_equilibrium; }

bool is_deletion_critical(const Graph& g) {
  // Removing {u, v} must strictly increase *both* endpoints' local
  // diameters. Disconnecting deletions count as +∞ and therefore pass.
  // One masked-APSP row read per endpoint on the CSR snapshot.
  std::vector<Vertex> base_ecc = eccentricities(g);
  if (swap_engine_enabled(g)) {
    const CsrGraph csr(g);
    BatchBfsWorkspace ws;
    std::vector<std::uint16_t> dist(g.num_vertices());
    for (const auto& [u, v] : g.edges()) {
      if (base_ecc[u] == kInfDist || base_ecc[v] == kInfDist) return false;  // disconnected
      const MaskedEdge mask{u, v};
      const BfsResult ru = csr_bfs(csr, u, mask, dist.data(), ws);
      const std::uint64_t ecc_u = ru.spans(csr.num_vertices()) ? ru.ecc : kInfCost;
      if (ecc_u <= base_ecc[u]) return false;
      const BfsResult rv = csr_bfs(csr, v, mask, dist.data(), ws);
      const std::uint64_t ecc_v = rv.spans(csr.num_vertices()) ? rv.ecc : kInfCost;
      if (ecc_v <= base_ecc[v]) return false;
    }
    return true;
  }
  Graph work = g;
  BfsWorkspace ws;
  for (const auto& [u, v] : g.edges()) {
    work.remove_edge(u, v);
    const std::uint64_t ecc_u = vertex_cost(work, u, UsageCost::Max, ws);
    const std::uint64_t ecc_v = vertex_cost(work, v, UsageCost::Max, ws);
    work.add_edge(u, v);
    if (base_ecc[u] == kInfDist || base_ecc[v] == kInfDist) return false;  // disconnected input
    if (ecc_u <= base_ecc[u] || ecc_v <= base_ecc[v]) return false;
  }
  return true;
}

bool is_insertion_stable(const Graph& g) {
  // After inserting {v, w}, the distance from v to x is
  // min(d(v,x), 1 + d(w,x)) — a shortest path uses the new edge at most
  // once. One APSP pass answers every candidate insertion with no mutation.
  const DistanceMatrix dm(g);
  if (!dm.connected()) return false;
  const Vertex n = g.num_vertices();
  std::vector<Vertex> ecc(n);
  for (Vertex v = 0; v < n; ++v) ecc[v] = dm.eccentricity(v);

  for (Vertex v = 0; v < n; ++v) {
    const auto dv = dm.row(v);
    for (Vertex w = v + 1; w < n; ++w) {
      if (g.has_edge(v, w)) continue;
      const auto dw = dm.row(w);
      Vertex new_ecc_v = 0;
      Vertex new_ecc_w = 0;
      for (Vertex x = 0; x < n; ++x) {
        new_ecc_v = std::max(new_ecc_v, std::min(dv[x], static_cast<Vertex>(1 + dw[x])));
        new_ecc_w = std::max(new_ecc_w, std::min(dw[x], static_cast<Vertex>(1 + dv[x])));
      }
      if (new_ecc_v < ecc[v] || new_ecc_w < ecc[w]) return false;
    }
  }
  return true;
}

bool vertex_is_sum_stable(const Graph& g, Vertex v) {
  BfsWorkspace ws;
  return !first_sum_deviation(g, v, ws).has_value();
}

bool vertex_is_max_stable(const Graph& g, Vertex v) {
  BfsWorkspace ws;
  return !first_max_deviation(g, v, ws, /*include_deletions=*/true).has_value();
}

}  // namespace bncg

// Incremental-unrest search state — delta evaluation for *search*, the way
// core/swap_engine.hpp is delta evaluation for *certification*.
//
// Equilibrium search (core/search.hpp) and best-response dynamics
// (core/dynamics.hpp) both sit in a propose → evaluate → accept/reject loop
// whose evaluation step used to recompute the unrest potential from scratch:
// one vertex-masked APSP plus a best-response scan per agent, per proposal.
// SearchState makes the loop incremental around three observations:
//
//  1. Toggling one edge {u, v} cannot be used to *skip* agents exactly: the
//     entry d_{G−a}(u, v) of every agent's masked matrix changes on every
//     toggle (an added edge drops it to 1; a removed edge lifts it off 1),
//     and the best-response scan reads every entry. What CAN be made cheap
//     is each agent's re-evaluation, by caching every agent's masked
//     distance matrix d_{G−a} across proposals:
//       * addition of {u, v}: a shortest path uses a new edge at most once,
//         so d'(x,y) = min(d(x,y), d(x,u)+1+d(v,y), d(x,v)+1+d(u,y)) updates
//         each cached matrix in one branch-free streaming pass — no BFS;
//       * removal of {u, v}: row x changes only if the edge lies on some
//         shortest path from x, i.e. |d(x,u) − d(x,v)| = 1 (a shortest-path
//         prefix is shortest, so a shortest path crossing u→v reaches u
//         shortest-ly). Only these *dirty rows* are re-traversed, batched
//         through graph/bfs_batch (csr_apsp_rows_capped); clean rows kept.
//     Distances are stored in a width-adaptive capped-infinity encoding
//     (graph/dist_width.hpp): kSearchInf8 = 0x3F when the instance's
//     diameter fits 8 bits, kSearchInf16 = 0x3FFF otherwise. Either cap
//     keeps the addition formula's two chained adds (≤ 2·kInf + 1) inside
//     the storage type, so the whole pass stays branch-free add/min — and
//     the u8 layout halves the bandwidth of every row stream.
//  2. The same pass that streams an agent's updated rows accumulates, per
//     candidate w₂, the sum-model relief bound
//       R1[w₂] = Σ_y max(0, min1_y − d'(w₂, y))
//     (min1 = elementwise min over the agent's neighbor rows). For every
//     removed edge w the post-swap cost is (n−1) + Σ_y M^w_y − relief, and
//     both the kept-neighbor sum's excess over Σ min1 and the relief's
//     excess over R1 are the same owned-slack Σ_{argmin_y=w} (min2_y −
//     min1_y), so they cancel:  cost(w, w₂) ≥ (n−1) + Σ_{y≠a} min1_y −
//     R1[w₂] — one w-independent O(1) test per candidate, the sum model's
//     analogue of the engine's max-model far-set filter. The prune only
//     ever skips candidates that provably cannot beat (or tie) the running
//     best, so witnesses and scan order match the engine and the
//     bncg::naive oracles bit for bit.
//  3. Evaluation never writes the matrix cache: per agent, only the CHANGED
//     rows are touched — their old contributions are subtracted from cached
//     per-agent scan tables (min1/min2/argmin and R1), the new rows are
//     materialized into a per-thread scratch matrix behind row-pointer
//     indirection, and new contributions are added. Accepting a proposal is
//     a journal append plus two O(1) buffer flips (full matrix and scan
//     tables are double-buffered; every staged evaluation parks its
//     proposal tables in the shadow set). The agent matrices catch up
//     lazily through the journal: addition backlogs replay as formula
//     passes over changed rows, removal backlogs re-traverse dirty rows
//     against the journal's CSR snapshot, long backlogs fall back to one
//     fresh masked APSP. Rejection costs nothing.
//
// The width is invisible in the results: SearchState (the public facade)
// starts narrow when the diameter bound fits, and any refresh that meets a
// finite distance the u8 cap cannot represent *promotes* the whole state to
// u16 — every cached structure is a pure function of the current graph plus
// the staged toggle, so promotion is a rebuild-at-width, bit-identical to
// having run u16 from the start (DESIGN.md §10 has the protocol).
//
// Everything here is exact: differential tests (tests/test_search_state.cpp
// and the cross-width fuzz suite tests/test_width_fuzz.cpp) pin unrest
// values, deviations, and certification verdicts to full naive
// recomputation after every accepted and rejected proposal. DESIGN.md §9
// documents the invalidation rule and the measured cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/usage_cost.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/simd.hpp"

namespace bncg {

/// Largest n for which search/dynamics auto-select the incremental state.
/// The cache holds one n×n² slab (n³ bytes in u8, 2n³ in u16: 0.13–0.27 GB
/// at this cap), so unbounded auto-enablement would silently trade the
/// engine's O(n²) scratch for gigabytes. Direct construction accepts any
/// n ≤ 16382 when the caller accepts the memory bill.
inline constexpr Vertex kSearchStateAutoMaxVertices = 512;

/// True when search and dynamics should route through SearchState: n within
/// the auto-enable cap and BNCG_FORCE_NAIVE not set.
[[nodiscard]] bool search_state_enabled(const Graph& g);

/// Operation counters for benchmarks and the differential harness.
struct SearchStats {
  std::uint64_t proposals = 0;        ///< propose_toggle() calls
  std::uint64_t evaluations = 0;      ///< proposal_unrest() computations
  std::uint64_t commits = 0;          ///< accepted proposals + applied moves
  std::uint64_t rows_refreshed = 0;   ///< rows re-traversed after removals
  std::uint64_t rows_reused = 0;      ///< rows kept by the dirty-row test
  std::uint64_t agents_scanned = 0;   ///< best-response scans executed
  std::uint64_t candidates_pruned = 0;    ///< candidates rejected by R1/far-set
  std::uint64_t candidates_combined = 0;  ///< candidates fully combined
  std::uint64_t promotions = 0;           ///< u8 → u16 cap promotions
};

/// Connectivity/diameter screen of a pending toggle (read off the
/// incrementally updated full-graph matrix, no fresh traversal).
struct ToggleShape {
  bool connected = false;
  Vertex diameter = 0;  ///< kInfDist when disconnected
};

/// Width-typed incremental evaluation state — the implementation behind the
/// SearchState facade, instantiated for Dist ∈ {u8, u16}. Every distance
/// slab, scan table, and delta kernel runs in Dist; the u8 instantiation
/// throws WidthSaturated from any refresh that meets a finite distance
/// above kMaxFiniteFor<u8> (the facade catches it and promotes). Use the
/// facade unless you are the facade.
template <typename Dist>
class SearchStateImpl {
 public:
  static constexpr Dist kInf = kSearchInfFor<Dist>;
  static constexpr Dist kMaxFinite = kMaxFiniteFor<Dist>;

  /// Snapshots `g` (connected or not) and builds the full-graph matrix
  /// (throws WidthSaturated when it does not fit the width). Per-agent
  /// masked matrices materialize lazily on first use. For the max model,
  /// `include_deletions` selects whether unrest and certification count
  /// non-critical deletions as violations (the max-equilibrium definition
  /// does); ignored in the sum model.
  SearchStateImpl(const Graph& g, UsageCost model, bool include_deletions, bool parallel);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] UsageCost model() const noexcept { return model_; }
  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] Vertex diameter() const noexcept;  ///< kInfDist if disconnected
  [[nodiscard]] bool connected() const noexcept;

  [[nodiscard]] std::uint64_t unrest();

  ToggleShape propose_toggle(Vertex u, Vertex v);
  [[nodiscard]] std::uint64_t proposal_unrest();
  void commit();

  [[nodiscard]] std::optional<Deviation> best_deviation(Vertex a, bool include_deletions);
  [[nodiscard]] std::optional<Deviation> first_deviation(Vertex a, bool include_deletions);

  // Swaps have no impl-level entry point on purpose: the facade applies
  // them as two single toggles so each throw point precedes its mutation
  // (promotion retry-safety).
  void apply_deletion(Vertex v, Vertex w);
  void apply_toggle(Vertex u, Vertex v);

  [[nodiscard]] bool certify_current();

  [[nodiscard]] const SearchStats& stats() const noexcept { return stats_; }
  /// Replaces the counters wholesale — promotion carries the u8 impl's
  /// counters into its u16 successor so the run's totals survive the swap.
  void adopt_stats(const SearchStats& stats) noexcept { stats_ = stats; }

  /// Test introspection: agent a's scan tables brought current and widened
  /// to width-independent values (capped ∞ → kInfDist). See the facade.
  void debug_scan_tables(Vertex a, std::vector<Vertex>& min1, std::vector<Vertex>& min2,
                         std::vector<Vertex>& argmin, std::vector<std::uint32_t>& r1);

 private:
  struct Toggle {
    Vertex u = kNoVertex;
    Vertex v = kNoVertex;
    bool add = false;
    /// Snapshot of the graph *before* a removal (edge still present): the
    /// lazy replay of the removal BFS needs that historical adjacency.
    /// Empty for additions (the formula replay is graph-free).
    std::shared_ptr<const CsrGraph> before;
  };

  /// Per-lane scan scratch (mirrors SwapEngine::Scratch) plus per-lane stat
  /// counters merged after each pass (keeps parallel passes race-free). The
  /// SIMD-streamed arrays use 64-byte-aligned storage. Lane scratch lives in
  /// the persistent scratch_ member — allocated once, warm across passes.
  struct Scratch {
    BatchBfsWorkspace bfs;
    AlignedVec<Dist> proposal_rows;     // staged-toggle matrix (n×n)
    std::vector<const Dist*> rowptr;    // per-row source (cache/scratch)
    std::vector<Vertex> cands;          // static candidate survivors
    AlignedVec<Dist> row_u, row_v;      // stashed toggle-endpoint rows
    AlignedVec<Dist> min1, min2;        // elementwise neighbor minima
    AlignedVec<Vertex> argmin;
    AlignedVec<Dist> mrow;              // M^w: min over N(a)∖{w}
    AlignedVec<std::uint32_t> r1;       // sum-model relief bound
    std::vector<std::uint8_t> is_nbr;
    AlignedVec<Vertex> far;             // max-model far set (n slots)
    std::vector<Vertex> sources;        // dirty rows to refresh
    std::vector<Vertex> nbrs;           // proposal-adjusted neighbor list
    SearchStats stats;
  };

  enum class ScanMode { Value, First, Best };

  struct ScanResult {
    std::optional<Deviation> witness;    // First/Best modes
    std::uint64_t best_cost = kInfCost;  // best cost_after over deviations
    bool found = false;
  };

  [[nodiscard]] Dist* agent_rows(Vertex a) noexcept {
    return agents_.data() + static_cast<std::size_t>(a) * n_ * n_;
  }
  [[nodiscard]] Dist* table_min1(Vertex a) noexcept {
    return tmin1_[tcur_].data() + static_cast<std::size_t>(a) * n_;
  }
  [[nodiscard]] Dist* table_min2(Vertex a) noexcept {
    return tmin2_[tcur_].data() + static_cast<std::size_t>(a) * n_;
  }
  [[nodiscard]] Vertex* table_argmin(Vertex a) noexcept {
    return targmin_[tcur_].data() + static_cast<std::size_t>(a) * n_;
  }
  [[nodiscard]] std::uint32_t* table_r1(Vertex a) noexcept {
    return tr1_[tcur_].data() + static_cast<std::size_t>(a) * n_;
  }
  /// Stores the scratch tables (which describe the staged proposal for
  /// agent a) into the shadow table set; commit() flips the sets, so an
  /// accepted proposal's tables become current for free.
  void store_shadow_tables(Vertex a, const Scratch& scratch);
  [[nodiscard]] Dist* full_rows(std::size_t slab) noexcept { return full_[slab].data(); }

  /// csr_apsp_rows_capped under this width's cap; throws WidthSaturated
  /// instead of returning false (u16 cannot saturate: n ≤ kMaxFinite + 1).
  void refresh_rows(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                    Dist* matrix, BatchBfsWorkspace& bfs, Vertex masked_vertex);

  void ensure_slabs();
  void ensure_table_slabs();
  void ensure_agent_current(Vertex a, Scratch& scratch);
  /// Rebuilds agent a's persistent scan tables when stale (matrix must be
  /// current). Kept in lockstep with the matrix by the replay's row deltas;
  /// toggles incident to a invalidate them (the neighbor set changed).
  void ensure_tables(Vertex a, Scratch& scratch);
  /// Copies agent a's persistent tables into the scratch working copies.
  void load_tables(Vertex a, Scratch& scratch);
  void rebuild_agent(Vertex a, Scratch& scratch);
  void update_full_matrix_addition(Vertex u, Vertex v, std::size_t dst_slab, Scratch& scratch);
  void update_full_matrix_removal(Vertex u, Vertex v, std::size_t dst_slab, Scratch& scratch);
  void refresh_shape(std::size_t slab);
  void merge_stats(Scratch& scratch);

  /// Streams agent a's updated matrix for the staged addition into the
  /// scratch proposal matrix while accumulating R1 and neighbor minima;
  /// pure formula, the cached matrix is only read.
  void stream_addition(Vertex a, Vertex u, Vertex v, Scratch& scratch);
  /// Copies agent a's matrix into the scratch proposal matrix and
  /// re-traverses the rows dirtied by the staged removal.
  void stream_removal(Vertex a, Vertex u, Vertex v, Scratch& scratch);
  /// Builds R1 (optional) and min1/min2/argmin for a matrix already in place.
  void prepare_scan(const Dist* rows, Vertex a, Scratch& scratch, bool want_r1);
  /// Builds min1/min2/argmin and optionally R1 from scratch.rowptr rows.
  void scan_tables(Scratch& scratch, bool want_r1);

  ScanResult scan_agent(Vertex a, std::uint64_t old_cost, bool include_deletions, ScanMode mode,
                        Scratch& scratch, bool r1_valid);

  [[nodiscard]] std::uint64_t evaluate_pass(bool staged);
  [[nodiscard]] static std::uint64_t unrest_contribution(const ScanResult& r,
                                                         std::uint64_t old_cost);
  [[nodiscard]] std::uint64_t agent_cost_from_full(std::size_t slab, Vertex a) const;
  void proposal_neighbors(Vertex a, Vertex tu, Vertex tv, bool add, bool staged,
                          std::vector<Vertex>& out) const;
  std::optional<Deviation> deviation_impl(Vertex a, bool include_deletions, ScanMode mode);
  void append_toggle(Vertex u, Vertex v, bool add);
  void apply_toggle_impl(Vertex u, Vertex v, bool add);

  Graph graph_;
  CsrGraph csr_;
  UsageCost model_;
  bool include_deletions_;
  bool parallel_;
  Vertex n_ = 0;

  // Full-graph matrix: double-buffered (entries use kInf for ∞); fcur_
  // indexes the live copy, the other is the shadow a staged toggle is
  // screened into, and commit is the O(1) index flip. Per-agent masked
  // matrices live in ONE slab updated lazily through the journal —
  // evaluation materializes proposal matrices into per-thread scratch
  // instead of a shadow slab, halving both memory and DRAM write traffic.
  AlignedVec<Dist> full_[2];  // n×n full-graph distances
  AlignedVec<Dist> agents_;   // n slabs of n×n masked distances
  std::size_t fcur_ = 0;

  // Persistent per-agent scan tables (n entries per agent): coordinate-wise
  // neighbor minima and, in the sum model, the R1 relief bound. Maintained
  // by the same changed-row deltas as the matrices, so a staged evaluation
  // only touches rows the toggle actually changes. Double-buffered like the
  // full matrix: staged evaluations write every agent's proposal tables to
  // the shadow set, and commit() flips tcur_ — the accepted proposal's
  // tables become current with no recomputation. table_version_[a] tracks
  // the journal version the current set matches (kUnbuilt = must rebuild);
  // it may run ahead of version_[a] right after a commit, in which case the
  // matrix catches up through the journal without touching the tables.
  AlignedVec<Dist> tmin1_[2], tmin2_[2];
  AlignedVec<Vertex> targmin_[2];
  AlignedVec<std::uint32_t> tr1_[2];
  std::size_t tcur_ = 0;
  std::vector<std::uint64_t> table_version_;

  // Shape caches of the full matrices (per slab).
  std::vector<std::uint32_t> rowsum_[2];  // Σ_y d(a, y) over capped values
  std::vector<Dist> rowmax_[2];           // max_y d(a, y)
  Vertex diameter_[2] = {0, 0};           // kInfDist when disconnected

  // Toggle journal for lazy per-agent maintenance. version_[a] indexes into
  // the virtual history; log_base_ is the history index of log_[0]. An agent
  // with version_[a] == kUnbuilt has no matrix yet. Entries deeper than
  // kReplayLimit are dropped eagerly — agents that far behind rebuild from
  // one fresh masked APSP instead of replaying.
  std::vector<Toggle> log_;
  std::uint64_t log_base_ = 0;
  std::uint64_t head_ = 0;
  std::vector<std::uint64_t> version_;
  static constexpr std::uint64_t kUnbuilt = ~std::uint64_t{0};
  static constexpr std::size_t kReplayLimit = 4;

  // Staged proposal.
  bool staged_ = false;
  bool evaluated_ = false;
  Vertex staged_u_ = kNoVertex, staged_v_ = kNoVertex;
  bool staged_add_ = false;
  std::uint64_t staged_unrest_ = 0;

  std::optional<std::uint64_t> unrest_;  // cached unrest of the live graph
  SearchStats stats_;
  std::vector<Scratch> scratch_;  // scratch_[0] serves the serial paths
};

extern template class SearchStateImpl<std::uint8_t>;
extern template class SearchStateImpl<std::uint16_t>;

/// Incremental evaluation state for equilibrium search and dynamics — the
/// public, width-adaptive facade. Picks the u8 implementation when a cheap
/// diameter bound fits the 8-bit cap (or WidthPolicy::ForceU8 asks for it),
/// and transparently promotes to u16 the moment any refreshed row would
/// saturate — callers never observe the width except through width() and
/// stats().promotions; every value, witness, and trajectory is identical
/// across widths. Not thread-safe; internal passes parallelize over agents
/// on the process thread pool when `parallel` is set (results are
/// deterministic either way — per-agent outputs fold serially).
class SearchState {
 public:
  /// Snapshots `g` (connected or not); see SearchStateImpl's constructor
  /// for the model/include_deletions semantics. Requires 1 ≤ n ≤ 16382.
  SearchState(const Graph& g, UsageCost model, bool include_deletions = false,
              bool parallel = true, WidthPolicy width = WidthPolicy::Auto);
  ~SearchState();
  SearchState(const SearchState&) = delete;
  SearchState& operator=(const SearchState&) = delete;

  /// The current graph. Like stats(), the reference points into the active
  /// implementation: any mutating call (commit/apply_*, or an evaluation
  /// that promotes u8 → u16 and rebuilds the backing state) invalidates
  /// previously returned references — re-fetch after mutations, copy to
  /// keep.
  [[nodiscard]] const Graph& graph() const noexcept;
  [[nodiscard]] UsageCost model() const noexcept { return model_; }
  [[nodiscard]] Vertex num_vertices() const noexcept;
  [[nodiscard]] Vertex diameter() const noexcept;  ///< kInfDist if disconnected
  [[nodiscard]] bool connected() const noexcept;

  /// Distance storage width currently in use (U8 until a promotion).
  [[nodiscard]] DistWidth width() const noexcept;

  /// Total unrest of the current graph: Σ_a max(1, gain of a's best
  /// deviation), 0 iff no agent has a deviation — so 0 ⇔ the matching
  /// certifier passes. Sum model: equals sum_unrest(). Lazily computed,
  /// cached until the graph changes. Intended for connected graphs.
  [[nodiscard]] std::uint64_t unrest();

  // ---------------------------------------------------- search (anneal) API
  /// Stages toggling edge {u, v} and returns the cheap shape screen of the
  /// would-be graph. No agent work happens here; a subsequent
  /// proposal_unrest() evaluates the staged toggle, commit() accepts it, and
  /// staging a new toggle discards the old one. u ≠ v, both in range.
  ToggleShape propose_toggle(Vertex u, Vertex v);

  /// Exact unrest of the staged toggle's graph (== unrest() after
  /// committing it). Requires a staged toggle.
  [[nodiscard]] std::uint64_t proposal_unrest();

  /// Accepts the staged toggle: a journal append plus a CSR rebuild; the
  /// cached per-agent matrices catch up lazily. Requires the staged toggle
  /// to have been evaluated.
  void commit();

  // ------------------------------------------------------------ dynamics API
  /// Best/first improving deviation of agent `a`, identical in witness,
  /// costs, and scan order to SwapEngine and the bncg::naive oracles.
  [[nodiscard]] std::optional<Deviation> best_deviation(Vertex a, bool include_deletions = false);
  [[nodiscard]] std::optional<Deviation> first_deviation(Vertex a,
                                                         bool include_deletions = false);

  /// Applies an accepted move to the live state (graph, matrices, journal).
  void apply_swap(const EdgeSwap& swap);
  void apply_deletion(Vertex v, Vertex w);
  /// Applies a single edge toggle (add when absent, remove when present).
  void apply_toggle(Vertex u, Vertex v);

  /// True iff no agent has a deviation (same verdict as the certifiers,
  /// honoring the constructor's include_deletions in the max model).
  [[nodiscard]] bool certify_current();

  /// Counters of this run (carried across promotions). Invalidated like
  /// graph(): a promoting call rebuilds the backing state.
  [[nodiscard]] const SearchStats& stats() const noexcept;

  /// Width-independent snapshot of agent a's (current-graph) scan tables,
  /// with the capped infinity widened to kInfDist — so a promoted state and
  /// a from-scratch u16 state can be compared table for table (the
  /// promotion-invariant property tests do exactly that). r1 is empty in
  /// the max model.
  struct ScanTables {
    std::vector<Vertex> min1, min2, argmin;
    std::vector<std::uint32_t> r1;
  };
  [[nodiscard]] ScanTables debug_scan_tables(Vertex a);

 private:
  template <typename F>
  decltype(auto) dispatch(F&& f);
  void promote();

  UsageCost model_;
  bool include_deletions_;
  bool parallel_;
  // Facade copy of the staged toggle so a promotion mid-evaluation can
  // re-stage it on the fresh u16 state before retrying.
  bool staged_ = false;
  Vertex staged_u_ = kNoVertex, staged_v_ = kNoVertex;
  std::unique_ptr<SearchStateImpl<std::uint8_t>> impl8_;
  std::unique_ptr<SearchStateImpl<std::uint16_t>> impl16_;
};

}  // namespace bncg

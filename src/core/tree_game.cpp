#include "core/tree_game.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"

namespace bncg {

namespace {

/// BFS order + parent pointers from `root`; the backbone of the two-pass
/// subtree computations (iterative — no recursion on path-shaped trees).
struct RootedTree {
  std::vector<Vertex> order;   ///< BFS order, order[0] == root
  std::vector<Vertex> parent;  ///< parent[root] == kInfDist
};

RootedTree root_tree(const Graph& tree, Vertex root) {
  const Vertex n = tree.num_vertices();
  RootedTree rt;
  rt.order.reserve(n);
  rt.parent.assign(n, kInfDist);
  std::vector<bool> seen(n, false);
  seen[root] = true;
  rt.order.push_back(root);
  for (std::size_t head = 0; head < rt.order.size(); ++head) {
    const Vertex u = rt.order[head];
    for (const Vertex w : tree.neighbors(u)) {
      if (seen[w]) continue;
      seen[w] = true;
      rt.parent[w] = u;
      rt.order.push_back(w);
    }
  }
  return rt;
}

void require_tree(const Graph& g) { BNCG_REQUIRE(is_tree(g), "tree-game functions require a tree"); }

}  // namespace

std::vector<std::uint64_t> tree_distance_sums(const Graph& tree) {
  require_tree(tree);
  const Vertex n = tree.num_vertices();
  std::vector<std::uint64_t> sum(n, 0);
  if (n == 0) return sum;

  const RootedTree rt = root_tree(tree, 0);
  std::vector<std::uint64_t> size(n, 1);
  std::vector<std::uint64_t> down(n, 0);  // Σ_{x in subtree(v)} d(v, x)

  // Post-order accumulation (reverse BFS order visits children first).
  for (std::size_t i = rt.order.size(); i-- > 1;) {
    const Vertex v = rt.order[i];
    const Vertex p = rt.parent[v];
    size[p] += size[v];
    down[p] += down[v] + size[v];
  }
  // Pre-order rerooting: moving the root across edge p→v trades the v-side
  // (closer by 1) against the rest (farther by 1).
  sum[0] = down[0];
  for (std::size_t i = 1; i < rt.order.size(); ++i) {
    const Vertex v = rt.order[i];
    const Vertex p = rt.parent[v];
    sum[v] = sum[p] - size[v] + (n - size[v]);
  }
  return sum;
}

Vertex tree_one_median(const Graph& tree) {
  const auto sums = tree_distance_sums(tree);
  BNCG_REQUIRE(!sums.empty(), "median of an empty tree");
  return static_cast<Vertex>(std::min_element(sums.begin(), sums.end()) - sums.begin());
}

std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v) {
  require_tree(tree);
  tree.check_vertex(v);
  std::optional<TreeMove> best;
  const std::vector<Vertex> nbrs(tree.neighbors(v).begin(), tree.neighbors(v).end());
  std::vector<bool> blocked(tree.num_vertices(), false);
  for (const Vertex a : nbrs) {
    // Component of a in T − va: exactly the subtree v would re-attach.
    blocked.assign(tree.num_vertices(), false);
    blocked[v] = true;
    std::vector<Vertex> component{a};
    blocked[a] = true;
    for (std::size_t head = 0; head < component.size(); ++head) {
      for (const Vertex w : tree.neighbors(component[head])) {
        if (!blocked[w]) {
          blocked[w] = true;
          component.push_back(w);
        }
      }
    }
    std::sort(component.begin(), component.end());
    // Distance sums *within* the detached subtree; v's post-swap distance
    // sum to it is |T_a| + S_{T_a}(attach point), so the optimum is the
    // subtree's 1-median.
    const Graph sub = induced_subgraph(tree, component);
    const auto sums = tree_distance_sums(sub);
    const std::size_t a_local =
        static_cast<std::size_t>(std::lower_bound(component.begin(), component.end(), a) -
                                 component.begin());
    const std::size_t best_local =
        static_cast<std::size_t>(std::min_element(sums.begin(), sums.end()) - sums.begin());
    if (sums[best_local] < sums[a_local]) {
      const std::uint64_t gain = sums[a_local] - sums[best_local];
      if (!best || gain > best->gain) {
        best = TreeMove{v, a, component[best_local], gain};
      }
    }
  }
  return best;
}

TreeDynamicsResult run_tree_dynamics(Graph tree, std::uint64_t max_moves) {
  require_tree(tree);
  TreeDynamicsResult result;
  result.tree = std::move(tree);
  const Vertex n = result.tree.num_vertices();
  for (;;) {
    bool any_move = false;
    for (Vertex v = 0; v < n && result.moves < max_moves; ++v) {
      const auto move = best_tree_deviation(result.tree, v);
      if (!move) continue;
      result.tree.remove_edge(move->v, move->old_neighbor);
      result.tree.add_edge(move->v, move->new_neighbor);
      ++result.moves;
      any_move = true;
    }
    ++result.passes;
    if (!any_move) {
      result.converged = true;
      break;
    }
    if (result.moves >= max_moves) break;
  }
  return result;
}

std::optional<Theorem1Witness> theorem1_witness(const Graph& tree) {
  require_tree(tree);
  const Vertex n = tree.num_vertices();
  BfsWorkspace ws;
  for (Vertex v = 0; v < n; ++v) {
    const RootedTree rt = root_tree(tree, v);
    (void)bfs(tree, v, ws);
    const std::vector<Vertex>& dist = ws.dist();
    for (Vertex w = 0; w < n; ++w) {
      if (dist[w] != 3) continue;
      // Reconstruct the path v → a → b → w via parents from the root v.
      const Vertex b = rt.parent[w];
      const Vertex a = rt.parent[b];
      Theorem1Witness witness;
      witness.v = v;
      witness.a = a;
      witness.b = b;
      witness.w = w;
      // Component sizes when the three path edges are removed.
      const auto size_without = [&](Vertex keep, Vertex cut1, Vertex cut2) {
        std::vector<bool> seen(n, false);
        seen[cut1] = true;
        if (cut2 != kInfDist) seen[cut2] = true;
        std::vector<Vertex> stack{keep};
        seen[keep] = true;
        std::uint64_t count = 0;
        while (!stack.empty()) {
          const Vertex u = stack.back();
          stack.pop_back();
          ++count;
          for (const Vertex x : tree.neighbors(u)) {
            if (!seen[x]) {
              seen[x] = true;
              stack.push_back(x);
            }
          }
        }
        return count;
      };
      witness.sv = size_without(v, a, kInfDist);
      witness.sa = size_without(a, v, b);
      witness.sb = size_without(b, a, w);
      witness.sw = size_without(w, b, kInfDist);
      witness.v_swap_wins = witness.sb + witness.sw > witness.sa;
      witness.w_swap_wins = witness.sv + witness.sa > witness.sb;
      return witness;
    }
  }
  return std::nullopt;  // diameter ≤ 2
}

}  // namespace bncg

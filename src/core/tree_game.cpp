#include "core/tree_game.hpp"

#include <algorithm>

#include "core/swap_engine.hpp"  // force_naive_requested
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"

namespace bncg {

namespace {

/// BFS order + parent pointers from `root`; the backbone of the two-pass
/// subtree computations (iterative — no recursion on path-shaped trees).
struct RootedTree {
  std::vector<Vertex> order;   ///< BFS order, order[0] == root
  std::vector<Vertex> parent;  ///< parent[root] == kInfDist
};

RootedTree root_tree(const Graph& tree, Vertex root) {
  const Vertex n = tree.num_vertices();
  RootedTree rt;
  rt.order.reserve(n);
  rt.parent.assign(n, kInfDist);
  std::vector<bool> seen(n, false);
  seen[root] = true;
  rt.order.push_back(root);
  for (std::size_t head = 0; head < rt.order.size(); ++head) {
    const Vertex u = rt.order[head];
    for (const Vertex w : tree.neighbors(u)) {
      if (seen[w]) continue;
      seen[w] = true;
      rt.parent[w] = u;
      rt.order.push_back(w);
    }
  }
  return rt;
}

void require_tree(const Graph& g) { BNCG_REQUIRE(is_tree(g), "tree-game functions require a tree"); }

}  // namespace

std::vector<std::uint64_t> tree_distance_sums(const Graph& tree) {
  require_tree(tree);
  const Vertex n = tree.num_vertices();
  std::vector<std::uint64_t> sum(n, 0);
  if (n == 0) return sum;

  const RootedTree rt = root_tree(tree, 0);
  std::vector<std::uint64_t> size(n, 1);
  std::vector<std::uint64_t> down(n, 0);  // Σ_{x in subtree(v)} d(v, x)

  // Post-order accumulation (reverse BFS order visits children first).
  for (std::size_t i = rt.order.size(); i-- > 1;) {
    const Vertex v = rt.order[i];
    const Vertex p = rt.parent[v];
    size[p] += size[v];
    down[p] += down[v] + size[v];
  }
  // Pre-order rerooting: moving the root across edge p→v trades the v-side
  // (closer by 1) against the rest (farther by 1).
  sum[0] = down[0];
  for (std::size_t i = 1; i < rt.order.size(); ++i) {
    const Vertex v = rt.order[i];
    const Vertex p = rt.parent[v];
    sum[v] = sum[p] - size[v] + (n - size[v]);
  }
  return sum;
}

Vertex tree_one_median(const Graph& tree) {
  const auto sums = tree_distance_sums(tree);
  BNCG_REQUIRE(!sums.empty(), "median of an empty tree");
  return static_cast<Vertex>(std::min_element(sums.begin(), sums.end()) - sums.begin());
}

namespace naive {

std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v) {
  require_tree(tree);
  tree.check_vertex(v);
  std::optional<TreeMove> best;
  const std::vector<Vertex> nbrs(tree.neighbors(v).begin(), tree.neighbors(v).end());
  std::vector<bool> blocked(tree.num_vertices(), false);
  for (const Vertex a : nbrs) {
    // Component of a in T − va: exactly the subtree v would re-attach.
    blocked.assign(tree.num_vertices(), false);
    blocked[v] = true;
    std::vector<Vertex> component{a};
    blocked[a] = true;
    for (std::size_t head = 0; head < component.size(); ++head) {
      for (const Vertex w : tree.neighbors(component[head])) {
        if (!blocked[w]) {
          blocked[w] = true;
          component.push_back(w);
        }
      }
    }
    std::sort(component.begin(), component.end());
    // Distance sums *within* the detached subtree; v's post-swap distance
    // sum to it is |T_a| + S_{T_a}(attach point), so the optimum is the
    // subtree's 1-median.
    const Graph sub = induced_subgraph(tree, component);
    const auto sums = tree_distance_sums(sub);
    const std::size_t a_local =
        static_cast<std::size_t>(std::lower_bound(component.begin(), component.end(), a) -
                                 component.begin());
    const std::size_t best_local =
        static_cast<std::size_t>(std::min_element(sums.begin(), sums.end()) - sums.begin());
    if (sums[best_local] < sums[a_local]) {
      const std::uint64_t gain = sums[a_local] - sums[best_local];
      if (!best || gain > best->gain) {
        best = TreeMove{v, a, component[best_local], gain};
      }
    }
  }
  return best;
}

}  // namespace naive

std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v) {
  TreeGameScratch scratch;
  return best_tree_deviation(tree, v, scratch);
}

std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v,
                                            TreeGameScratch& s) {
  if (force_naive_requested()) return naive::best_tree_deviation(tree, v);
  tree.check_vertex(v);
  const Vertex n = tree.num_vertices();
  // Tree validation is folded into the work the sweep does anyway: the O(1)
  // edge count here, connectivity from the rooting BFS below (a connected
  // graph on n − 1 edges is a tree) — the one-shot overload's is_tree BFS
  // would double this function's cost on repeated sweeps.
  BNCG_REQUIRE(n == 0 || tree.num_edges() == static_cast<std::size_t>(n) - 1,
               "tree-game functions require a tree");
  std::optional<TreeMove> best;
  const auto nbrs = tree.neighbors(v);
  if (nbrs.empty()) return best;

  // One rooting at v covers every detachable subtree at once: rooted there,
  // the component of neighbor a in T − va is exactly a's subtree, and the
  // within-component distance sums come from the standard two passes —
  // post-order size/down, then a rerooting pre-order sweep confined to each
  // component (the oracle pays a BFS, a sort, and an induced-subgraph build
  // per neighbor for the same numbers). The rooting marks visited vertices
  // through the parent array itself (v is temporarily self-parented), so one
  // sweep with a reused scratch touches no allocator at all.
  s.order.clear();
  s.order.reserve(n);
  s.parent.assign(n, kInfDist);
  s.parent[v] = v;
  s.order.push_back(v);
  for (std::size_t head = 0; head < s.order.size(); ++head) {
    const Vertex u = s.order[head];
    for (const Vertex w : tree.neighbors(u)) {
      if (s.parent[w] != kInfDist) continue;
      s.parent[w] = u;
      s.order.push_back(w);
    }
  }
  s.parent[v] = kInfDist;
  BNCG_REQUIRE(s.order.size() == static_cast<std::size_t>(n),
               "tree-game functions require a tree");

  s.size.assign(n, 1);
  s.down.assign(n, 0);
  for (std::size_t i = s.order.size(); i-- > 1;) {
    const Vertex x = s.order[i];
    const Vertex p = s.parent[x];
    s.size[p] += s.size[x];
    s.down[p] += s.down[x] + s.size[x];
  }

  // croot[x] = the neighbor of v whose component holds x; sums[x] = Σ
  // distances from x within that component. Pre-order guarantees parents are
  // finished first.
  s.croot.assign(n, kInfDist);
  s.sums.assign(n, 0);
  for (std::size_t i = 1; i < s.order.size(); ++i) {
    const Vertex x = s.order[i];
    const Vertex p = s.parent[x];
    if (p == v) {
      s.croot[x] = x;
      s.sums[x] = s.down[x];
    } else {
      s.croot[x] = s.croot[p];
      const std::uint64_t comp = s.size[s.croot[x]];
      s.sums[x] = s.sums[p] - s.size[x] + (comp - s.size[x]);
    }
  }

  // Per-component 1-median, lowest id on ties: an ascending-id sweep with a
  // strict < keeps the first minimizer, matching the oracle's min_element
  // over the sorted component.
  s.median.assign(n, kInfDist);
  for (Vertex x = 0; x < n; ++x) {
    if (x == v) continue;
    const Vertex a = s.croot[x];
    if (s.median[a] == kInfDist || s.sums[x] < s.sums[s.median[a]]) s.median[a] = x;
  }
  for (const Vertex a : nbrs) {
    const Vertex m = s.median[a];
    if (s.sums[m] < s.sums[a]) {
      const std::uint64_t gain = s.sums[a] - s.sums[m];
      if (!best || gain > best->gain) best = TreeMove{v, a, m, gain};
    }
  }
  return best;
}

TreeDynamicsResult run_tree_dynamics(Graph tree, std::uint64_t max_moves) {
  require_tree(tree);
  TreeDynamicsResult result;
  result.tree = std::move(tree);
  const Vertex n = result.tree.num_vertices();
  TreeGameScratch scratch;
  for (;;) {
    bool any_move = false;
    for (Vertex v = 0; v < n && result.moves < max_moves; ++v) {
      const auto move = best_tree_deviation(result.tree, v, scratch);
      if (!move) continue;
      result.tree.remove_edge(move->v, move->old_neighbor);
      result.tree.add_edge(move->v, move->new_neighbor);
      ++result.moves;
      any_move = true;
    }
    ++result.passes;
    if (!any_move) {
      result.converged = true;
      break;
    }
    if (result.moves >= max_moves) break;
  }
  return result;
}

std::optional<Theorem1Witness> theorem1_witness(const Graph& tree) {
  require_tree(tree);
  const Vertex n = tree.num_vertices();
  BfsWorkspace ws;
  for (Vertex v = 0; v < n; ++v) {
    const RootedTree rt = root_tree(tree, v);
    (void)bfs(tree, v, ws);
    const std::vector<Vertex>& dist = ws.dist();
    for (Vertex w = 0; w < n; ++w) {
      if (dist[w] != 3) continue;
      // Reconstruct the path v → a → b → w via parents from the root v.
      const Vertex b = rt.parent[w];
      const Vertex a = rt.parent[b];
      Theorem1Witness witness;
      witness.v = v;
      witness.a = a;
      witness.b = b;
      witness.w = w;
      // Component sizes when the three path edges are removed.
      const auto size_without = [&](Vertex keep, Vertex cut1, Vertex cut2) {
        std::vector<bool> seen(n, false);
        seen[cut1] = true;
        if (cut2 != kInfDist) seen[cut2] = true;
        std::vector<Vertex> stack{keep};
        seen[keep] = true;
        std::uint64_t count = 0;
        while (!stack.empty()) {
          const Vertex u = stack.back();
          stack.pop_back();
          ++count;
          for (const Vertex x : tree.neighbors(u)) {
            if (!seen[x]) {
              seen[x] = true;
              stack.push_back(x);
            }
          }
        }
        return count;
      };
      witness.sv = size_without(v, a, kInfDist);
      witness.sa = size_without(a, v, b);
      witness.sb = size_without(b, a, w);
      witness.sw = size_without(w, b, kInfDist);
      witness.v_swap_wins = witness.sb + witness.sw > witness.sa;
      witness.w_swap_wins = witness.sv + witness.sa > witness.sb;
      return witness;
    }
  }
  return std::nullopt;  // diameter ≤ 2
}

}  // namespace bncg

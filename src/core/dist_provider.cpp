#include "core/dist_provider.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bncg {

std::uint64_t parse_mem_bytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("memory budget: empty value");
  std::size_t i = 0;
  std::uint64_t value = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw std::invalid_argument("memory budget overflows 64 bits: " + text);
    }
    value = value * 10 + digit;
    ++i;
  }
  if (i == 0) throw std::invalid_argument("memory budget must start with digits: " + text);
  std::uint64_t scale = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': scale = std::uint64_t{1} << 10; break;
      case 'M': scale = std::uint64_t{1} << 20; break;
      case 'G': scale = std::uint64_t{1} << 30; break;
      default: throw std::invalid_argument("memory budget suffix must be K/M/G: " + text);
    }
    ++i;
    if (i != text.size()) throw std::invalid_argument("trailing junk in memory budget: " + text);
    if (value > std::numeric_limits<std::uint64_t>::max() / scale) {
      throw std::invalid_argument("memory budget overflows 64 bits: " + text);
    }
  }
  return value * scale;
}

std::uint64_t env_mem_budget() {
  static const std::uint64_t parsed = [] {
    const char* raw = std::getenv("BNCG_MEM_BUDGET");
    if (raw == nullptr || raw[0] == '\0') return std::uint64_t{0};
    return parse_mem_bytes(raw);
  }();
  return parsed;
}

std::uint64_t resolved_mem_budget(const ResourceConfig& config) {
  return config.mem_budget != 0 ? config.mem_budget : env_mem_budget();
}

WidthAndBudgetPolicy::WidthAndBudgetPolicy(const ResourceConfig& config, unsigned lanes)
    : width_(config.width), total_budget_(resolved_mem_budget(config)) {
  if (lanes == 0) lanes = ThreadPool::global().size();
  if (lanes == 0) lanes = 1;
  // Never let integer division alias a tiny share with "unlimited" (0); a
  // 1-byte share fails loudly in RowCache::configure instead.
  lane_budget_ = total_budget_ == 0 ? 0 : std::max<std::uint64_t>(1, total_budget_ / lanes);
}

bool WidthAndBudgetPolicy::probe_prefers_u8(const CsrGraph& csr, BatchBfsWorkspace& ws) const {
  if (width_ == WidthPolicy::ForceU8) return true;
  if (width_ == WidthPolicy::ForceU16) return false;
  const Vertex n = csr.num_vertices();
  if (n == 0) return true;
  // One u16 traversal from vertex 0; works at any n because the capped fill
  // reports saturation instead of wrapping. A saturating probe means even
  // the u16 scans cannot encode this instance — let the scan itself fail
  // with its own diagnostic; here it simply rules out u8.
  std::vector<std::uint16_t> row(n);
  const Vertex src[1] = {0};
  if (!bfs_batch_capped<std::uint16_t>(csr, std::span<const Vertex>(src, 1), MaskedEdge{},
                                       row.data(), n, ws, kNoVertex, kInfDist16,
                                       std::uint16_t{kInfDist16 - 1})) {
    return false;
  }
  std::uint32_t ecc = 0;
  bool spans = true;
  for (Vertex x = 0; x < n; ++x) {
    if (row[x] == kInfDist16) {
      spans = false;
      break;
    }
    ecc = std::max<std::uint32_t>(ecc, row[x]);
  }
  // Masked sweeps can exceed the 2·ecc bound — the per-agent u16 fallback
  // absorbs those exactly, same contract as the old in-engine probe.
  return spans && 2 * ecc <= kMaxFiniteFor<std::uint8_t>;
}

bool WidthAndBudgetPolicy::dense_fits(Vertex n, DistWidth w) const noexcept {
  if (n >= kInfDist16) return false;  // dense scans use 16-bit-id traversals
  if (lane_budget_ == 0) return true;
  const std::uint64_t bytes =
      std::uint64_t{n} * n * (w == DistWidth::U8 ? sizeof(std::uint8_t) : sizeof(std::uint16_t));
  return bytes <= lane_budget_;
}

template <typename Dist>
bool DistanceProvider<Dist>::begin(const CsrGraph& csr, Vertex masked_vertex, Dist inf_value,
                                   Dist max_finite, RowStorage storage,
                                   std::uint64_t budget_bytes, AlignedVec<Dist>& dense_slab,
                                   BatchBfsWorkspace& ws) {
  storage_ = storage;
  csr_ = &csr;
  n_ = csr.num_vertices();
  if (storage == RowStorage::Dense) {
    const std::size_t cells = static_cast<std::size_t>(n_) * n_;
    if (dense_slab.size() < cells) dense_slab.resize(cells);
    if (!csr_apsp_capped<Dist>(csr, MaskedEdge{}, dense_slab.data(), ws, masked_vertex, inf_value,
                               max_finite)) {
      return false;
    }
    dense_ = dense_slab.data();
    return true;
  }
  dense_ = nullptr;
  // Budgeted with an unlimited budget (possible at n ≥ 65535, where the
  // dense path is unavailable regardless): blocks grow on demand, LRU never
  // needs to evict.
  const std::uint64_t effective =
      budget_bytes != 0 ? budget_bytes : std::numeric_limits<std::uint64_t>::max();
  if (!cache_configured_ || cache_budget_ != effective || cache_n_ != n_) {
    cache_.configure(n_, effective);
    cache_configured_ = true;
    cache_budget_ = effective;
    cache_n_ = n_;
  }
  cache_.begin_context(csr, masked_vertex, inf_value, max_finite);
  return true;
}

template <typename Dist>
const Dist* DistanceProvider<Dist>::row(Vertex source, BatchBfsWorkspace& ws) {
  if (storage_ == RowStorage::Dense) {
    BNCG_REQUIRE(dense_ != nullptr, "distance provider used before begin()");
    return dense_ + static_cast<std::size_t>(source) * n_;
  }
  return cache_.row(source, ws);
}

template <typename Dist>
bool DistanceProvider<Dist>::prefetch(std::span<const Vertex> sources, BatchBfsWorkspace& ws) {
  if (storage_ == RowStorage::Dense) return true;
  return cache_.prefetch(sources, ws);
}

template <typename Dist>
bool DistanceProvider<Dist>::resident(Vertex source) const {
  if (storage_ == RowStorage::Dense) return source < n_;
  return cache_.resident(source);
}

template <typename Dist>
const RowCache<Dist>& DistanceProvider<Dist>::cache() const {
  BNCG_REQUIRE(storage_ == RowStorage::Budgeted, "cache() is budgeted-mode introspection");
  return cache_;
}

template <typename Dist>
RowCache<Dist>& DistanceProvider<Dist>::cache() {
  BNCG_REQUIRE(storage_ == RowStorage::Budgeted, "cache() is budgeted-mode introspection");
  return cache_;
}

template class DistanceProvider<std::uint8_t>;
template class DistanceProvider<std::uint16_t>;

}  // namespace bncg

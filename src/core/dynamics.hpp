// Best-response swap dynamics.
//
// The process the paper's agents actually run: repeatedly, some vertex
// performs an improving edge swap until no agent has one (a swap
// equilibrium), or a move budget is exhausted. Swap dynamics preserve the
// edge count — the basic game has no α and edges can only be relocated —
// so the reachable equilibria live inside the fixed-m configuration space.
//
// Agent scans route through the incremental SearchState (cached per-agent
// masked distance matrices, core/search_state.hpp) when n is within its
// auto cap, through the delta-evaluation SwapEngine otherwise, and through
// the naive BFS-per-candidate oracle under BNCG_FORCE_NAIVE — all three
// produce bit-identical moves, so the tier never changes a trajectory.
//
// Neither version admits an obvious potential function, so convergence is
// not guaranteed a priori; the loop caps the number of moves and reports
// honestly whether it stopped at an equilibrium (verified by a final
// exhaustive certification) or at the budget.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dist_provider.hpp"
#include "core/equilibrium.hpp"
#include "core/usage_cost.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bncg {

/// Which agent moves next.
enum class Scheduler {
  RoundRobin,     ///< fixed cyclic vertex order, repeated passes
  RandomOrder,    ///< fresh uniformly shuffled order every pass
  GreedyGlobal,   ///< the globally most-improving swap each step
};

/// Which of an agent's improving swaps is taken.
enum class MovePolicy {
  FirstImprovement,  ///< first improving swap in scan order (fast)
  BestImprovement,   ///< the agent's most-improving swap
};

/// Dynamics configuration. Defaults model the sum game with round-robin
/// first-improvement agents — the cheapest natural process.
struct DynamicsConfig {
  UsageCost cost = UsageCost::Sum;
  Scheduler scheduler = Scheduler::RoundRobin;
  MovePolicy policy = MovePolicy::FirstImprovement;
  /// Hard cap on executed swaps (cycling guard).
  std::uint64_t max_moves = 100'000;
  /// In the max model, also perform cost-neutral deletions (they strictly
  /// shrink the edge set, driving toward deletion-critical graphs). Sum-model
  /// deletions are always strictly harmful, so this flag is ignored there.
  bool allow_neutral_deletions = false;
  /// Seed for RandomOrder shuffles.
  std::uint64_t seed = 0x5eed;
  /// Record (move index, social cost, diameter) after every move. Costs an
  /// extra APSP-lite pass per move; enable for plots, not for sweeps.
  bool record_trace = false;
  /// Track every visited configuration (graph6-encoded) and flag the first
  /// revisit. Neither usage cost admits a known potential function, so
  /// best-response cycles are a genuine open possibility — this is the
  /// instrument for probing it. Memory: O(moves · n²/6) bytes.
  bool detect_revisits = false;
  /// DEPRECATED (one PR): pre-ResourceConfig width knob, honored only while
  /// resources.width stays Auto. Use resources.width instead.
  WidthPolicy dist_width = WidthPolicy::Auto;
  /// Shared resource knobs (core/dist_provider.hpp) of the SearchState /
  /// SwapEngine tiers. Purely speed/memory preferences; moves are
  /// width-independent.
  ResourceConfig resources;
};

/// One point of the recorded trajectory.
struct TraceEntry {
  std::uint64_t move = 0;          ///< number of moves executed so far
  std::uint64_t social_cost = 0;   ///< Σ_v usage cost (sum model: Σ dist sums)
  Vertex diameter = 0;             ///< graph diameter after the move
};

/// Outcome of a dynamics run.
struct DynamicsResult {
  Graph graph{0};                 ///< final configuration
  bool converged = false;         ///< true ⇔ final graph passed the certifier
  std::uint64_t moves = 0;        ///< swaps (and neutral deletions) executed
  std::uint64_t passes = 0;       ///< completed scheduler passes
  std::vector<TraceEntry> trace;  ///< nonempty iff record_trace
  /// With detect_revisits: true iff some configuration was reached twice
  /// (a best-response cycle), and the move index of the first revisit.
  bool revisited = false;
  std::uint64_t first_revisit_move = 0;
};

/// Runs best-response dynamics from `start` until equilibrium or budget.
/// The start graph must be connected (usage costs are finite).
[[nodiscard]] DynamicsResult run_dynamics(Graph start, const DynamicsConfig& config);

/// Social cost under the given model: Σ_v cost(v). (Sum model: twice the
/// sum of pairwise distances; max model: Σ_v ecc(v).)
[[nodiscard]] std::uint64_t social_cost(const Graph& g, UsageCost model);

}  // namespace bncg

// Wire format of cross-process certification shards.
//
// A ShardResult (core/certify_sharded.hpp) is the unit a worker process
// hands back to the merger. This header gives it two interchangeable
// encodings:
//
//  * binary — a fixed little-endian layout behind an 8-byte magic and an
//    explicit version word, closed by an FNV-1a checksum over the body, so
//    truncation and bit corruption are detected before any field is
//    trusted. Endian-stable: fields are (de)serialized byte by byte, never
//    memcpy'd through host integers.
//  * JSON — a single self-describing object for logs, debugging, and
//    non-C++ tooling. It carries the SAME checksum, computed over the
//    canonical binary body re-encoded from the parsed fields, so a flipped
//    digit in a JSON payload is caught exactly like a flipped bit in a
//    binary one.
//
// Both decoders throw std::invalid_argument on malformed input (truncated,
// corrupted, wrong magic/version, out-of-range fields) — a bad shard file
// can refuse to load but can never crash the merger or smuggle in an
// inconsistent result. Instance safety is layered on top: every shard
// embeds graph_fingerprint(g), and merge_shard_results refuses to fold
// shards whose fingerprints (or run parameters) disagree. Layout and
// protocol: DESIGN.md §11.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/certify_sharded.hpp"

namespace bncg {

/// Version word of the shard wire format. Bump on any layout change; the
/// decoders reject versions they do not speak.
inline constexpr std::uint32_t kShardWireVersion = 1;

/// Magic prefix of binary shard files ("BNCGSHRD").
inline constexpr std::string_view kShardWireMagic = "BNCGSHRD";

/// Selects the on-disk encoding a writer produces. Readers auto-detect.
enum class ShardWireFormat : std::uint8_t { Binary, Json };

/// Serializes to the binary layout (magic + version + body + checksum).
[[nodiscard]] std::string shard_to_binary(const ShardResult& shard);

/// Serializes to the JSON object form (one trailing newline).
[[nodiscard]] std::string shard_to_json(const ShardResult& shard);

/// Decodes the binary layout; throws std::invalid_argument on anything
/// short of a byte-exact, checksum-valid, in-range encoding.
[[nodiscard]] ShardResult shard_from_binary(std::string_view bytes);

/// Decodes the JSON form; throws std::invalid_argument on malformed JSON,
/// unknown or duplicate or missing keys, out-of-range values, or a
/// checksum that does not match the re-encoded body.
[[nodiscard]] ShardResult shard_from_json(std::string_view text);

/// Auto-detecting decode: binary when the magic leads, JSON otherwise.
[[nodiscard]] ShardResult shard_from_bytes(std::string_view bytes);

/// Writes `bytes` to `path` crash-safely: `<path>.tmp` + fsync +
/// rename(2) + directory fsync, so a process killed at ANY instant leaves
/// either the complete file or nothing at the final path — never a
/// truncated one. Shared by write_shard_file, the service's shard journal
/// (svc/journal.hpp), and the streaming witness sink (svc/sink.hpp).
/// Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Writes `shard` to `path` in the requested format, crash-safely (via
/// write_file_atomic), so a worker killed mid-write leaves no truncated
/// file for a merge to trip on. Throws std::runtime_error on I/O failure.
void write_shard_file(const std::string& path, const ShardResult& shard,
                      ShardWireFormat format = ShardWireFormat::Binary);

/// Reads and auto-detect-decodes a shard file. Throws std::runtime_error
/// when the file cannot be read, std::invalid_argument when its contents
/// do not decode.
[[nodiscard]] ShardResult read_shard_file(const std::string& path);

}  // namespace bncg

#include "core/dynamics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/io.hpp"
#include "graph/metrics.hpp"

namespace bncg {

namespace {

/// Picks the deviation for agent `v` according to the configured model and
/// policy. Neutral deletions are only surfaced in the max model when asked.
std::optional<Deviation> agent_deviation(const Graph& g, Vertex v, const DynamicsConfig& config,
                                         BfsWorkspace& ws) {
  if (config.cost == UsageCost::Sum) {
    return config.policy == MovePolicy::FirstImprovement ? first_sum_deviation(g, v, ws)
                                                         : best_sum_deviation(g, v, ws);
  }
  if (config.policy == MovePolicy::FirstImprovement) {
    return first_max_deviation(g, v, ws, config.allow_neutral_deletions);
  }
  // Best-improvement in the max model: prefer the best improving swap, fall
  // back to a neutral deletion (which never competes on cost_after).
  auto best = best_max_deviation(g, v, ws);
  if (!best && config.allow_neutral_deletions) {
    best = first_max_deviation(g, v, ws, /*include_deletions=*/true);
  }
  return best;
}

/// Executes a deviation on the live graph. NonCriticalDelete witnesses
/// encode a pure deletion (add_w == remove_w), which ScopedSwap treats as a
/// no-op — handle it explicitly.
void execute(Graph& g, const Deviation& dev) {
  if (dev.kind == Deviation::Kind::NonCriticalDelete) {
    g.remove_edge(dev.swap.v, dev.swap.remove_w);
    return;
  }
  apply_swap(g, dev.swap);
}

void record(const Graph& g, UsageCost model, std::uint64_t move, std::vector<TraceEntry>& trace) {
  trace.push_back({move, social_cost(g, model), diameter(g)});
}

/// True iff the graph is in equilibrium for the configured game (including
/// the deletion clause when neutral deletions participate in the max game).
bool certified(const Graph& g, const DynamicsConfig& config) {
  if (config.cost == UsageCost::Sum) return certify_sum_equilibrium(g).is_equilibrium;
  if (config.allow_neutral_deletions) return certify_max_equilibrium(g).is_equilibrium;
  // Swap-only max dynamics: check swap stability for every agent.
  const Vertex n = g.num_vertices();
  BfsWorkspace ws;
  for (Vertex v = 0; v < n; ++v) {
    if (first_max_deviation(g, v, ws, /*include_deletions=*/false)) return false;
  }
  return true;
}

}  // namespace

std::uint64_t social_cost(const Graph& g, UsageCost model) {
  const Vertex n = g.num_vertices();
  BfsWorkspace ws;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t c = vertex_cost(g, v, model, ws);
    if (c == kInfCost) return kInfCost;
    total += c;
  }
  return total;
}

DynamicsResult run_dynamics(Graph start, const DynamicsConfig& config) {
  BNCG_REQUIRE(is_connected(start), "dynamics require a connected start graph");
  DynamicsResult result;
  result.graph = std::move(start);
  Graph& g = result.graph;
  const Vertex n = g.num_vertices();

  Xoshiro256ss rng(config.seed);
  BfsWorkspace ws;
  if (config.record_trace) record(g, config.cost, 0, result.trace);

  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});

  std::unordered_set<std::string> visited;
  if (config.detect_revisits) visited.insert(to_graph6(g));

  bool out_of_budget = false;
  const auto post_move = [&]() {
    ++result.moves;
    if (config.record_trace) record(g, config.cost, result.moves, result.trace);
    if (config.detect_revisits && !result.revisited &&
        !visited.insert(to_graph6(g)).second) {
      result.revisited = true;
      result.first_revisit_move = result.moves;
    }
    if (result.moves >= config.max_moves) out_of_budget = true;
  };

  for (;;) {
    bool any_move = false;
    if (config.scheduler == Scheduler::GreedyGlobal) {
      // One pass = one globally best move.
      std::optional<Deviation> best;
      for (Vertex v = 0; v < n && !out_of_budget; ++v) {
        const auto dev = agent_deviation(g, v, config, ws);
        if (!dev) continue;
        // Rank by absolute improvement; neutral deletions rank last.
        const auto gain = [](const Deviation& d) {
          return d.cost_before == kInfCost ? kInfCost : d.cost_before - d.cost_after;
        };
        if (!best || gain(*dev) > gain(*best)) best = dev;
      }
      if (best) {
        execute(g, *best);
        any_move = true;
        post_move();
      }
    } else {
      if (config.scheduler == Scheduler::RandomOrder) rng.shuffle(order);
      for (const Vertex v : order) {
        if (out_of_budget) break;
        const auto dev = agent_deviation(g, v, config, ws);
        if (!dev) continue;
        execute(g, *dev);
        any_move = true;
        post_move();
      }
    }
    ++result.passes;
    if (!any_move || out_of_budget) break;
  }

  // A quiet pass under FirstImprovement scanning is already an exhaustive
  // certificate for the *scanned* move set; re-certify explicitly so the
  // flag is trustworthy regardless of policy or early exit.
  result.converged = !out_of_budget && certified(g, config);
  return result;
}

}  // namespace bncg

#include "core/dynamics.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "core/search_state.hpp"
#include "core/swap_engine.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

namespace bncg {

namespace {

/// Move provider for the dynamics loop, in three tiers:
///  * SearchState-backed (default, n within the auto cap): per-agent masked
///    distance matrices are cached across moves and caught up lazily through
///    the toggle journal, so a scan costs a streamed row update instead of a
///    fresh masked APSP.
///  * SwapEngine-backed (n too large for the matrix cache): one CSR snapshot
///    per accepted move, one masked APSP per scan.
///  * naive (BNCG_FORCE_NAIVE, or n too large for 16-bit distances): the
///    original BFS-per-candidate oracle.
/// All three return bit-identical deviations, so trajectories do not depend
/// on the tier (differential-tested in tests/test_search_state.cpp).
class MoveProvider {
 public:
  MoveProvider(const Graph& g, const DynamicsConfig& config)
      : config_(config),
        use_state_(search_state_enabled(g)),
        use_engine_(!use_state_ && swap_engine_enabled(g)) {
    const WidthPolicy width =
        config.resources.width != WidthPolicy::Auto ? config.resources.width : config.dist_width;
    if (use_state_) {
      state_.emplace(g, config.cost,
                     /*include_deletions=*/config.cost == UsageCost::Max &&
                         config.allow_neutral_deletions,
                     /*parallel=*/true, width);
    } else if (use_engine_) {
      engine_.emplace(g, config.resources);
    }
  }

  /// Must be called after every executed move (graph mutated accordingly).
  void on_move(const Graph& g, const Deviation& dev) {
    if (use_state_) {
      if (dev.kind == Deviation::Kind::NonCriticalDelete) {
        state_->apply_deletion(dev.swap.v, dev.swap.remove_w);
      } else {
        state_->apply_swap(dev.swap);
      }
      return;
    }
    if (use_engine_) engine_->rebuild(g);
  }

  /// Picks the deviation for agent `v` according to the configured model and
  /// policy. Neutral deletions are only surfaced in the max model when asked.
  std::optional<Deviation> agent_deviation(const Graph& g, Vertex v) {
    const bool first = config_.policy == MovePolicy::FirstImprovement;
    if (use_state_) {
      if (config_.cost == UsageCost::Sum) {
        return first ? state_->first_deviation(v) : state_->best_deviation(v);
      }
      if (first) {
        return state_->first_deviation(v, config_.allow_neutral_deletions);
      }
      auto best = state_->best_deviation(v);
      if (!best && config_.allow_neutral_deletions) {
        best = state_->first_deviation(v, /*include_deletions=*/true);
      }
      return best;
    }
    if (use_engine_) {
      if (config_.cost == UsageCost::Sum) {
        return first ? engine_->first_deviation(v, UsageCost::Sum)
                     : engine_->best_deviation(v, UsageCost::Sum);
      }
      if (first) {
        return engine_->first_deviation(v, UsageCost::Max, config_.allow_neutral_deletions);
      }
      auto best = engine_->best_deviation(v, UsageCost::Max);
      if (!best && config_.allow_neutral_deletions) {
        best = engine_->first_deviation(v, UsageCost::Max, /*include_deletions=*/true);
      }
      return best;
    }
    if (config_.cost == UsageCost::Sum) {
      return first ? naive::first_sum_deviation(g, v, ws_) : naive::best_sum_deviation(g, v, ws_);
    }
    if (first) {
      return naive::first_max_deviation(g, v, ws_, config_.allow_neutral_deletions);
    }
    // Best-improvement in the max model: prefer the best improving swap, fall
    // back to a neutral deletion (which never competes on cost_after).
    auto best = naive::best_max_deviation(g, v, ws_);
    if (!best && config_.allow_neutral_deletions) {
      best = naive::first_max_deviation(g, v, ws_, /*include_deletions=*/true);
    }
    return best;
  }

  /// True iff the graph is in equilibrium for the configured game (including
  /// the deletion clause when neutral deletions participate in the max game).
  bool certified(const Graph& g) {
    if (use_state_) return state_->certify_current();
    if (use_engine_) {
      if (config_.cost == UsageCost::Sum) {
        return engine_->certify(UsageCost::Sum, /*include_deletions=*/false).is_equilibrium;
      }
      return engine_->certify(UsageCost::Max, config_.allow_neutral_deletions).is_equilibrium;
    }
    if (config_.cost == UsageCost::Sum) return naive::certify_sum_equilibrium(g).is_equilibrium;
    if (config_.allow_neutral_deletions) return naive::certify_max_equilibrium(g).is_equilibrium;
    // Swap-only max dynamics: check swap stability for every agent.
    const Vertex n = g.num_vertices();
    for (Vertex v = 0; v < n; ++v) {
      if (naive::first_max_deviation(g, v, ws_, /*include_deletions=*/false)) return false;
    }
    return true;
  }

 private:
  const DynamicsConfig& config_;
  bool use_state_;
  bool use_engine_;
  std::optional<SearchState> state_;
  std::optional<SwapEngine> engine_;
  BfsWorkspace ws_;
};

/// Executes a deviation on the live graph. NonCriticalDelete witnesses
/// encode a pure deletion (add_w == remove_w), which ScopedSwap treats as a
/// no-op — handle it explicitly.
void execute(Graph& g, const Deviation& dev) {
  if (dev.kind == Deviation::Kind::NonCriticalDelete) {
    g.remove_edge(dev.swap.v, dev.swap.remove_w);
    return;
  }
  apply_swap(g, dev.swap);
}

void record(const Graph& g, UsageCost model, std::uint64_t move, std::vector<TraceEntry>& trace) {
  trace.push_back({move, social_cost(g, model), diameter(g)});
}

}  // namespace

std::uint64_t social_cost(const Graph& g, UsageCost model) {
  const Vertex n = g.num_vertices();
  BfsWorkspace ws;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t c = vertex_cost(g, v, model, ws);
    if (c == kInfCost) return kInfCost;
    total += c;
  }
  return total;
}

DynamicsResult run_dynamics(Graph start, const DynamicsConfig& config) {
  BNCG_REQUIRE(is_connected(start), "dynamics require a connected start graph");
  DynamicsResult result;
  result.graph = std::move(start);
  Graph& g = result.graph;
  const Vertex n = g.num_vertices();

  Xoshiro256ss rng(config.seed);
  MoveProvider provider(g, config);
  if (config.record_trace) record(g, config.cost, 0, result.trace);

  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});

  std::unordered_set<std::string> visited;
  if (config.detect_revisits) visited.insert(to_graph6(g));

  bool out_of_budget = false;
  const auto post_move = [&](const Deviation& dev) {
    provider.on_move(g, dev);
    ++result.moves;
    if (config.record_trace) record(g, config.cost, result.moves, result.trace);
    if (config.detect_revisits && !result.revisited &&
        !visited.insert(to_graph6(g)).second) {
      result.revisited = true;
      result.first_revisit_move = result.moves;
    }
    if (result.moves >= config.max_moves) out_of_budget = true;
  };

  for (;;) {
    bool any_move = false;
    if (config.scheduler == Scheduler::GreedyGlobal) {
      // One pass = one globally best move.
      std::optional<Deviation> best;
      for (Vertex v = 0; v < n && !out_of_budget; ++v) {
        const auto dev = provider.agent_deviation(g, v);
        if (!dev) continue;
        // Rank by absolute improvement; neutral deletions rank last.
        const auto gain = [](const Deviation& d) {
          return d.cost_before == kInfCost ? kInfCost : d.cost_before - d.cost_after;
        };
        if (!best || gain(*dev) > gain(*best)) best = dev;
      }
      if (best) {
        execute(g, *best);
        any_move = true;
        post_move(*best);
      }
    } else {
      if (config.scheduler == Scheduler::RandomOrder) rng.shuffle(order);
      for (const Vertex v : order) {
        if (out_of_budget) break;
        const auto dev = provider.agent_deviation(g, v);
        if (!dev) continue;
        execute(g, *dev);
        any_move = true;
        post_move(*dev);
      }
    }
    ++result.passes;
    if (!any_move || out_of_budget) break;
  }

  // A quiet pass under FirstImprovement scanning is already an exhaustive
  // certificate for the *scanned* move set; re-certify explicitly so the
  // flag is trustworthy regardless of policy or early exit.
  result.converged = !out_of_budget && provider.certified(g);
  return result;
}

}  // namespace bncg

// bncg::Instance — the one-object public API (DESIGN.md §16).
//
// Everything an application wants from this library is a question about one
// graph: is it an equilibrium, what does best-response dynamics do to it,
// what are its observables. Before this facade every caller hand-wired the
// answer out of engine/state/width/thread parts (build a SwapEngine, pick a
// WidthPolicy, choose certify_sharded vs certify_*_equilibrium, thread a
// seed through DynamicsConfig); the parts still exist — the facade owns the
// wiring so examples/ and tools/ do not.
//
//   Instance inst = Instance::gnm(1000, 2000, /*seed=*/42);
//   RunConfig run;
//   run.model = UsageCost::Max;
//   run.include_deletions = true;
//   run.resources.mem_budget = parse_mem_bytes("64M");
//   ShardedCertificate cert = inst.certify(run);
//
// One RunConfig drives both entry points: `certify` answers the
// equilibrium question exhaustively (sharded over the thread pool, dense
// or budgeted row storage per ResourceConfig), `equilibrate` runs
// best-response dynamics under the same model/resources until equilibrium
// or budget. The pre-facade free functions (certify_sharded, run_dynamics,
// certify_sum_equilibrium, …) remain the thin compatibility surface for
// one PR; new code should start here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/certify_sharded.hpp"
#include "core/dist_provider.hpp"
#include "core/dynamics.hpp"
#include "core/usage_cost.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// One run's worth of decisions, shared by certification and dynamics.
/// Defaults reproduce the library-wide defaults: sum model, swap-only,
/// auto width, no memory budget (dense storage whenever it fits).
struct RunConfig {
  UsageCost model = UsageCost::Sum;
  /// Max model only: also consider cost-neutral single-edge deletions
  /// (the paper's deletion clause). Ignored in the sum model, where every
  /// deletion is strictly harmful.
  bool include_deletions = false;
  /// Certification verdict-only fast path: abort all shards at the first
  /// violation. Witness/moves_checked become schedule-dependent;
  /// is_equilibrium stays deterministic.
  bool stop_on_violation = false;
  /// Certification shard count; 0 = auto (scaled to the thread pool).
  std::size_t shards = 0;
  /// Dynamics move cap (cycling guard).
  std::uint64_t max_moves = 100'000;
  /// Dynamics scheduler seed (RandomOrder shuffles).
  std::uint64_t seed = 0x5eed;
  /// Distance-storage width and per-lane memory budget
  /// (core/dist_provider.hpp). mem_budget = 0 defers to BNCG_MEM_BUDGET,
  /// then unlimited.
  ResourceConfig resources;
};

/// An owned problem instance: one connected-or-not graph plus the cached
/// identity (fingerprint) the wire formats key on. Cheap to query,
/// immutable — runs return results instead of mutating the instance.
class Instance {
 public:
  /// Wraps an existing graph (moved in).
  explicit Instance(Graph g);

  /// Reads an edge-list file (graph/io.hpp format). Throws
  /// std::runtime_error when the file is unreadable or malformed.
  [[nodiscard]] static Instance load_edge_list(const std::string& path);

  /// Reads an edge list from a stream.
  [[nodiscard]] static Instance read_edge_list(std::istream& in);

  /// Seeded random connected G(n, m).
  [[nodiscard]] static Instance gnm(Vertex n, std::size_t m, std::uint64_t seed);

  /// The paper's Figure 4 rotated torus: n = 2k², degree 4, a max-model
  /// swap equilibrium — the standard large structured instance.
  [[nodiscard]] static Instance torus(Vertex k);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] Vertex num_vertices() const noexcept { return graph_.num_vertices(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return graph_.num_edges(); }

  /// Canonical instance fingerprint (graph/io.hpp), computed once.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Exhaustive equilibrium certification under `run` — the sharded
  /// certifier with the run's resources (dense below the budget, blocked
  /// row cache above it; identical certificate bytes either way).
  [[nodiscard]] ShardedCertificate certify(const RunConfig& run = {}) const;

  /// Best-response swap dynamics from this instance under `run`'s model,
  /// deletion clause, move cap, seed, and resources. Fine-grained control
  /// (scheduler, move policy, tracing) stays on run_dynamics —
  /// equilibrate(run, config) seeds those extras from `config` and
  /// overrides only what RunConfig owns.
  [[nodiscard]] DynamicsResult equilibrate(const RunConfig& run = {}) const;
  [[nodiscard]] DynamicsResult equilibrate(const RunConfig& run, DynamicsConfig config) const;

  /// Σ_v usage cost under `model` (kInfCost when disconnected).
  [[nodiscard]] std::uint64_t social_cost(UsageCost model) const;

  /// Graph diameter (kInfDist when disconnected).
  [[nodiscard]] Vertex diameter() const;

 private:
  Graph graph_;
  mutable std::uint64_t fingerprint_ = 0;
  mutable bool fingerprint_cached_ = false;
};

}  // namespace bncg

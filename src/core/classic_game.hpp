// The classic α-parameterized network creation game (Fabrikant et al. [9])
// — the baseline the paper's model abstracts away from.
//
// Each vertex *buys* a set of incident edges at α each; connectivity is
// undirected regardless of who paid. cost(v) = α·|bought by v| + Σ_u d(v,u).
// Recognizing a full Nash equilibrium is NP-complete [9], so — exactly as
// the paper argues for computationally bounded agents — this implementation
// checks and plays the polynomial-time *greedy* deviations:
//
//   add     — buy one new edge v–w            (cost +α, distances shrink)
//   delete  — drop one owned edge v–w         (cost −α, distances grow)
//   swap    — redirect one owned edge v–w to v–w′ (α unchanged)
//
// A graph with ownership that admits none of these is a *greedy equilibrium*
// (a necessary condition for Nash). The swap move is α-independent — it is
// exactly the basic game's move — which is how the paper's results transfer
// to every α at once: a sum swap equilibrium is swap-stable here for all α.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/swap_engine.hpp"
#include "core/usage_cost.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bncg {

/// The α values at which the current ownership state is a greedy
/// equilibrium, as a closed interval [lo, hi] (possibly empty) of the
/// α-axis: adds force α ≥ lo (below that some agent profitably buys an
/// edge), deletes force α ≤ hi, and swaps — α-independent — can rule out
/// every α at once. Thresholds are raw usage differences; membership applies
/// the same 1e-9 strictness margin as best_deviation, so contains(α) ⟺
/// is_greedy_equilibrium() at that α.
struct AlphaInterval {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();
  bool swap_blocked = false;
  [[nodiscard]] bool contains(double alpha) const noexcept {
    return !swap_blocked && lo - alpha <= 1e-9 && alpha - hi <= 1e-9;
  }
  [[nodiscard]] bool empty() const noexcept { return swap_blocked || lo - hi > 1e-9; }
};

/// A deviation in the α-game.
struct ClassicMove {
  enum class Type { Add, Delete, Swap };
  Type type = Type::Add;
  Vertex v = 0;         ///< deviating agent (buyer)
  Vertex w = 0;         ///< edge endpoint being added/deleted/removed
  Vertex w2 = 0;        ///< swap target (Swap only)
  double gain = 0.0;    ///< strict decrease of v's cost (> 0)
};

/// Game state: a graph plus who bought each edge.
class ClassicGame {
 public:
  /// Starts from `g`, assigning every edge's ownership to its lower-id
  /// endpoint (a neutral convention; ownership evolves through moves).
  ClassicGame(Graph g, double alpha);

  /// Starts with explicit ownership: owner[i] must be an endpoint of
  /// edges()[i] in the order returned by g.edges().
  ClassicGame(Graph g, double alpha, const std::vector<Vertex>& owners);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Buyer of edge {u, v}. Precondition: edge exists.
  [[nodiscard]] Vertex owner(Vertex u, Vertex v) const;

  /// Number of edges bought by `v`.
  [[nodiscard]] Vertex edges_bought(Vertex v) const;

  /// cost(v) = α·bought(v) + Σ_u d(v, u); +∞ (as a huge double) when
  /// disconnected.
  [[nodiscard]] double vertex_cost(Vertex v, BfsWorkspace& ws) const;

  /// Social cost: α·m + Σ_v Σ_u d(v,u).
  [[nodiscard]] double social_cost() const;

  /// Best greedy deviation (add/delete/swap) for agent `v`; nullopt when
  /// none improves strictly. Routed: SwapEngine-backed (one masked APSP per
  /// agent instead of one BFS per candidate) when swap_engine_enabled(),
  /// else the naive scan — identical moves, gains, and tie-breaks either way
  /// (differential suite: tests/test_classic_game_engine.cpp).
  [[nodiscard]] std::optional<ClassicMove> best_deviation(Vertex v, BfsWorkspace& ws) const;

  /// The brute-force oracle: direct mutation + one BFS per candidate move.
  [[nodiscard]] std::optional<ClassicMove> best_deviation_naive(Vertex v, BfsWorkspace& ws) const;

  /// Engine-backed scan against a caller-provided snapshot of graph() —
  /// callers that loop agents (is_greedy_equilibrium, run_best_response)
  /// build the engine once per graph version instead of once per agent.
  [[nodiscard]] std::optional<ClassicMove> best_deviation_engine(const SwapEngine& engine,
                                                                 SwapEngine::Scratch& scratch,
                                                                 Vertex v) const;

  /// The α-interval of the current state (routed like best_deviation), and
  /// its naive BFS twin for differential testing. Engine and naive compute
  /// identical usage integers, so the interval endpoints are bit-identical
  /// doubles.
  [[nodiscard]] AlphaInterval alpha_equilibrium_interval() const;
  [[nodiscard]] AlphaInterval alpha_equilibrium_interval_naive() const;

  /// Applies a move (must be legal for the current state).
  void apply(const ClassicMove& move);

  /// True iff no agent has a greedy deviation. Poly-time; a *necessary*
  /// condition for Nash equilibrium.
  [[nodiscard]] bool is_greedy_equilibrium() const;

  /// Runs round-robin greedy best-response until quiescent or move budget.
  struct RunResult {
    bool converged = false;
    std::uint64_t moves = 0;
    std::uint64_t passes = 0;
  };
  RunResult run_best_response(std::uint64_t max_moves);

 private:
  [[nodiscard]] static std::uint64_t key(Vertex u, Vertex v) {
    const auto [lo, hi] = std::minmax(u, v);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  Graph graph_;
  double alpha_;
  std::unordered_map<std::uint64_t, Vertex> owner_;
};

/// Reference social costs of the two canonical networks (the known optima
/// of the α-game: the clique for α ≤ 2 and the star for α ≥ 2 [9]).
[[nodiscard]] double star_social_cost(Vertex n, double alpha);
[[nodiscard]] double clique_social_cost(Vertex n, double alpha);
[[nodiscard]] double optimal_social_cost(Vertex n, double alpha);

}  // namespace bncg

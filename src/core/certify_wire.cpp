#include "core/certify_wire.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/io.hpp"
#include "util/error.hpp"

namespace bncg {

namespace {

// ----------------------------------------------------------------- binary

void append_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// Bounds-checked little-endian reader over a byte view.
class ByteCursor {
 public:
  explicit ByteCursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    BNCG_REQUIRE(pos_ + 1 <= bytes_.size(), "shard wire: truncated");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    BNCG_REQUIRE(pos_ + 4 <= bytes_.size(), "shard wire: truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    BNCG_REQUIRE(pos_ + 8 <= bytes_.size(), "shard wire: truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

[[nodiscard]] std::uint8_t bool_byte(bool b) { return b ? 1 : 0; }

[[nodiscard]] bool byte_bool(std::uint8_t v) {
  BNCG_REQUIRE(v <= 1, "shard wire: boolean field out of range");
  return v != 0;
}

/// Canonical field encoding shared by both formats: the binary layout's
/// body, and the byte sequence the JSON checksum is computed over.
[[nodiscard]] std::string encode_body(const ShardResult& r) {
  std::string out;
  append_u32(out, kShardWireVersion);
  append_u64(out, r.fingerprint);
  append_u32(out, r.n);
  append_u64(out, r.m);
  append_u8(out, r.model == UsageCost::Sum ? 0 : 1);
  append_u8(out, bool_byte(r.include_deletions));
  append_u8(out, bool_byte(r.stop_on_violation));
  append_u8(out, r.width == DistWidth::U8 ? 0 : 1);
  append_u32(out, r.shard_index);
  append_u32(out, r.shard_count);
  append_u32(out, r.agent_lo);
  append_u32(out, r.agent_hi);
  append_u32(out, r.scanned);
  append_u64(out, r.moves);
  append_u64(out, r.width_fallbacks);
  append_u8(out, bool_byte(r.best.has_value()));
  if (r.best) {
    append_u32(out, r.best->swap.v);
    append_u32(out, r.best->swap.remove_w);
    append_u32(out, r.best->swap.add_w);
    append_u64(out, r.best->cost_before);
    append_u64(out, r.best->cost_after);
    append_u8(out, r.best->kind == Deviation::Kind::ImprovingSwap ? 0 : 1);
  }
  return out;
}

/// Structural sanity every decoder enforces before a result is handed out;
/// the deeper run-consistency checks live in merge_shard_results.
void validate_shard(const ShardResult& r) {
  BNCG_REQUIRE(r.agent_lo <= r.agent_hi && r.agent_hi <= r.n, "shard wire: bad agent range");
  BNCG_REQUIRE(r.shard_index < r.shard_count, "shard wire: bad shard index");
  BNCG_REQUIRE(r.scanned <= r.agent_hi - r.agent_lo, "shard wire: scanned exceeds range");
  if (r.best) {
    BNCG_REQUIRE(r.best->swap.v >= r.agent_lo && r.best->swap.v < r.agent_hi,
                 "shard wire: witness agent outside shard range");
    BNCG_REQUIRE(r.best->swap.remove_w < r.n && r.best->swap.add_w < r.n,
                 "shard wire: witness endpoint out of range");
  }
}

[[nodiscard]] ShardResult decode_body(std::string_view body) {
  ByteCursor in(body);
  const std::uint32_t version = in.u32();
  BNCG_REQUIRE(version == kShardWireVersion, "shard wire: unsupported version");
  ShardResult r;
  r.fingerprint = in.u64();
  r.n = in.u32();
  r.m = in.u64();
  const std::uint8_t model = in.u8();
  BNCG_REQUIRE(model <= 1, "shard wire: bad model byte");
  r.model = model == 0 ? UsageCost::Sum : UsageCost::Max;
  r.include_deletions = byte_bool(in.u8());
  r.stop_on_violation = byte_bool(in.u8());
  const std::uint8_t width = in.u8();
  BNCG_REQUIRE(width <= 1, "shard wire: bad width byte");
  r.width = width == 0 ? DistWidth::U8 : DistWidth::U16;
  r.shard_index = in.u32();
  r.shard_count = in.u32();
  r.agent_lo = in.u32();
  r.agent_hi = in.u32();
  r.scanned = in.u32();
  r.moves = in.u64();
  r.width_fallbacks = in.u64();
  if (byte_bool(in.u8())) {
    Deviation dev;
    dev.swap.v = in.u32();
    dev.swap.remove_w = in.u32();
    dev.swap.add_w = in.u32();
    dev.cost_before = in.u64();
    dev.cost_after = in.u64();
    const std::uint8_t kind = in.u8();
    BNCG_REQUIRE(kind <= 1, "shard wire: bad witness kind byte");
    dev.kind = kind == 0 ? Deviation::Kind::ImprovingSwap : Deviation::Kind::NonCriticalDelete;
    r.best = dev;
  }
  BNCG_REQUIRE(in.exhausted(), "shard wire: trailing bytes");
  validate_shard(r);
  return r;
}

// ------------------------------------------------------------------- JSON

void append_json_u64(std::string& out, const char* key, std::uint64_t v, bool comma = true) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += std::to_string(v);
  out += comma ? ",\n" : "\n";
}

[[nodiscard]] std::string hex_string(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void append_json_str(std::string& out, const char* key, std::string_view v,
                     bool comma = true) {
  out += "  \"";
  out += key;
  out += "\": \"";
  out += v;
  out += comma ? "\",\n" : "\"\n";
}

void append_json_bool(std::string& out, const char* key, bool v) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += v ? "true" : "false";
  out += ",\n";
}

/// Minimal recursive-descent reader for exactly the object shape
/// shard_to_json emits: flat string keys; u64 / string / bool / null /
/// one nested witness object as values. Anything else throws — decoding a
/// hostile or damaged file must fail cleanly, never read out of bounds.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    BNCG_REQUIRE(pos_ < text_.size() && text_[pos_] == c, "shard json: malformed structure");
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    BNCG_REQUIRE(pos_ < text_.size(), "shard json: truncated");
    return text_[pos_];
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (true) {
      BNCG_REQUIRE(pos_ < text_.size(), "shard json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      // The format never emits escapes or control characters; reject both
      // rather than implement a partial escape decoder.
      BNCG_REQUIRE(c != '\\' && static_cast<unsigned char>(c) >= 0x20,
                   "shard json: unsupported character in string");
      out.push_back(c);
    }
  }

  [[nodiscard]] std::uint64_t u64() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    BNCG_REQUIRE(pos_ > start, "shard json: expected unsigned integer");
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value, 10);
    BNCG_REQUIRE(ec == std::errc() && ptr == text_.data() + pos_,
                 "shard json: integer out of range");
    return value;
  }

  [[nodiscard]] bool boolean() {
    skip_ws();
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    BNCG_REQUIRE(false, "shard json: expected boolean");
    return false;  // unreachable
  }

  [[nodiscard]] bool consume_null() {
    skip_ws();
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    return false;
  }

  /// Full-range u64 carried as a string ("0x…" hex or decimal) — JSON
  /// numbers above 2^53 silently lose precision in double-based tooling,
  /// so fingerprints, checksums, and witness costs never ride as numbers.
  [[nodiscard]] std::uint64_t u64_string() {
    const std::string text = string();
    std::uint64_t value = 0;
    const bool hex = text.size() > 2 && text[0] == '0' && text[1] == 'x';
    const char* first = text.data() + (hex ? 2 : 0);
    const char* last = text.data() + text.size();
    BNCG_REQUIRE(first != last, "shard json: empty integer string");
    const auto [ptr, ec] = std::from_chars(first, last, value, hex ? 16 : 10);
    BNCG_REQUIRE(ec == std::errc() && ptr == last, "shard json: bad integer string");
    return value;
  }

  void expect_end() {
    skip_ws();
    BNCG_REQUIRE(pos_ == text_.size(), "shard json: trailing content");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] Vertex json_vertex(std::uint64_t v, const char* what) {
  BNCG_REQUIRE(v <= 0xFFFFFFFFull, what);
  return static_cast<Vertex>(v);
}

[[nodiscard]] std::uint32_t json_u32(std::uint64_t v, const char* what) {
  BNCG_REQUIRE(v <= 0xFFFFFFFFull, what);
  return static_cast<std::uint32_t>(v);
}

[[nodiscard]] Deviation parse_json_witness(JsonCursor& in) {
  Deviation dev;
  bool seen_v = false, seen_remove = false, seen_add = false, seen_before = false,
       seen_after = false, seen_kind = false;
  in.expect('{');
  if (!in.consume('}')) {
    do {
      const std::string key = in.string();
      in.expect(':');
      const auto once = [&](bool& seen) {
        BNCG_REQUIRE(!seen, "shard json: duplicate witness key");
        seen = true;
      };
      if (key == "v") {
        once(seen_v);
        dev.swap.v = json_vertex(in.u64(), "shard json: witness v out of range");
      } else if (key == "remove_w") {
        once(seen_remove);
        dev.swap.remove_w = json_vertex(in.u64(), "shard json: witness remove_w out of range");
      } else if (key == "add_w") {
        once(seen_add);
        dev.swap.add_w = json_vertex(in.u64(), "shard json: witness add_w out of range");
      } else if (key == "cost_before") {
        once(seen_before);
        dev.cost_before = in.u64_string();
      } else if (key == "cost_after") {
        once(seen_after);
        dev.cost_after = in.u64_string();
      } else if (key == "kind") {
        once(seen_kind);
        const std::string kind = in.string();
        if (kind == "improving-swap") {
          dev.kind = Deviation::Kind::ImprovingSwap;
        } else if (kind == "non-critical-delete") {
          dev.kind = Deviation::Kind::NonCriticalDelete;
        } else {
          BNCG_REQUIRE(false, "shard json: unknown witness kind");
        }
      } else {
        BNCG_REQUIRE(false, "shard json: unknown witness key");
      }
    } while (in.consume(','));
    in.expect('}');
  }
  BNCG_REQUIRE(seen_v && seen_remove && seen_add && seen_before && seen_after && seen_kind,
               "shard json: missing witness key");
  return dev;
}

}  // namespace

std::string shard_to_binary(const ShardResult& shard) {
  const std::string body = encode_body(shard);
  std::string out;
  out.reserve(kShardWireMagic.size() + body.size() + 8);
  out += kShardWireMagic;
  out += body;
  append_u64(out, fnv1a64(body.data(), body.size()));
  return out;
}

ShardResult shard_from_binary(std::string_view bytes) {
  BNCG_REQUIRE(bytes.size() >= kShardWireMagic.size() + 8, "shard wire: truncated");
  BNCG_REQUIRE(bytes.substr(0, kShardWireMagic.size()) == kShardWireMagic,
               "shard wire: bad magic");
  const std::string_view body =
      bytes.substr(kShardWireMagic.size(), bytes.size() - kShardWireMagic.size() - 8);
  ByteCursor tail(bytes.substr(bytes.size() - 8));
  const std::uint64_t want = tail.u64();
  BNCG_REQUIRE(fnv1a64(body.data(), body.size()) == want, "shard wire: checksum mismatch");
  return decode_body(body);
}

std::string shard_to_json(const ShardResult& shard) {
  const std::string body = encode_body(shard);
  std::string out = "{\n";
  append_json_str(out, "format", "bncg-shard");
  append_json_u64(out, "version", kShardWireVersion);
  append_json_str(out, "fingerprint", hex_string(shard.fingerprint));
  append_json_u64(out, "n", shard.n);
  append_json_str(out, "m", std::to_string(shard.m));
  append_json_str(out, "model", shard.model == UsageCost::Sum ? "sum" : "max");
  append_json_bool(out, "include_deletions", shard.include_deletions);
  append_json_bool(out, "stop_on_violation", shard.stop_on_violation);
  append_json_str(out, "width", dist_width_name(shard.width));
  append_json_u64(out, "shard_index", shard.shard_index);
  append_json_u64(out, "shard_count", shard.shard_count);
  append_json_u64(out, "agent_lo", shard.agent_lo);
  append_json_u64(out, "agent_hi", shard.agent_hi);
  append_json_u64(out, "scanned", shard.scanned);
  // moves and witness costs are full-range u64 (costs can carry the
  // kInfCost sentinel), so they travel as decimal strings — see u64_string.
  append_json_str(out, "moves", std::to_string(shard.moves));
  append_json_str(out, "width_fallbacks", std::to_string(shard.width_fallbacks));
  if (shard.best) {
    out += "  \"witness\": {\"v\": " + std::to_string(shard.best->swap.v) +
           ", \"remove_w\": " + std::to_string(shard.best->swap.remove_w) +
           ", \"add_w\": " + std::to_string(shard.best->swap.add_w) +
           ", \"cost_before\": \"" + std::to_string(shard.best->cost_before) +
           "\", \"cost_after\": \"" + std::to_string(shard.best->cost_after) +
           "\", \"kind\": \"" +
           (shard.best->kind == Deviation::Kind::ImprovingSwap ? "improving-swap"
                                                               : "non-critical-delete") +
           "\"},\n";
  } else {
    out += "  \"witness\": null,\n";
  }
  append_json_str(out, "checksum", hex_string(fnv1a64(body.data(), body.size())),
                  /*comma=*/false);
  out += "}\n";
  return out;
}

ShardResult shard_from_json(std::string_view text) {
  JsonCursor in(text);
  ShardResult r;
  std::uint64_t version = 0, checksum = 0;
  std::string format;
  enum Key {
    kFormat, kVersion, kFingerprint, kN, kM, kModel, kIncludeDeletions, kStopOnViolation,
    kWidth, kShardIndex, kShardCount, kAgentLo, kAgentHi, kScanned, kMoves, kWidthFallbacks,
    kWitness, kChecksum, kKeyCount
  };
  bool seen[kKeyCount] = {};
  const auto once = [&](Key k) {
    BNCG_REQUIRE(!seen[k], "shard json: duplicate key");
    seen[k] = true;
  };

  in.expect('{');
  do {
    const std::string key = in.string();
    in.expect(':');
    if (key == "format") {
      once(kFormat);
      format = in.string();
    } else if (key == "version") {
      once(kVersion);
      version = in.u64();
    } else if (key == "fingerprint") {
      once(kFingerprint);
      r.fingerprint = in.u64_string();
    } else if (key == "n") {
      once(kN);
      r.n = json_vertex(in.u64(), "shard json: n out of range");
    } else if (key == "m") {
      once(kM);
      r.m = in.u64_string();
    } else if (key == "model") {
      once(kModel);
      const std::string model = in.string();
      if (model == "sum") {
        r.model = UsageCost::Sum;
      } else if (model == "max") {
        r.model = UsageCost::Max;
      } else {
        BNCG_REQUIRE(false, "shard json: unknown model");
      }
    } else if (key == "include_deletions") {
      once(kIncludeDeletions);
      r.include_deletions = in.boolean();
    } else if (key == "stop_on_violation") {
      once(kStopOnViolation);
      r.stop_on_violation = in.boolean();
    } else if (key == "width") {
      once(kWidth);
      const std::string width = in.string();
      if (width == "u8") {
        r.width = DistWidth::U8;
      } else if (width == "u16") {
        r.width = DistWidth::U16;
      } else {
        BNCG_REQUIRE(false, "shard json: unknown width");
      }
    } else if (key == "shard_index") {
      once(kShardIndex);
      r.shard_index = json_u32(in.u64(), "shard json: shard_index out of range");
    } else if (key == "shard_count") {
      once(kShardCount);
      r.shard_count = json_u32(in.u64(), "shard json: shard_count out of range");
    } else if (key == "agent_lo") {
      once(kAgentLo);
      r.agent_lo = json_vertex(in.u64(), "shard json: agent_lo out of range");
    } else if (key == "agent_hi") {
      once(kAgentHi);
      r.agent_hi = json_vertex(in.u64(), "shard json: agent_hi out of range");
    } else if (key == "scanned") {
      once(kScanned);
      r.scanned = json_vertex(in.u64(), "shard json: scanned out of range");
    } else if (key == "moves") {
      once(kMoves);
      r.moves = in.u64_string();
    } else if (key == "width_fallbacks") {
      once(kWidthFallbacks);
      r.width_fallbacks = in.u64_string();
    } else if (key == "witness") {
      once(kWitness);
      if (!in.consume_null()) r.best = parse_json_witness(in);
    } else if (key == "checksum") {
      once(kChecksum);
      checksum = in.u64_string();
    } else {
      BNCG_REQUIRE(false, "shard json: unknown key");
    }
  } while (in.consume(','));
  in.expect('}');
  in.expect_end();

  for (int k = 0; k < kKeyCount; ++k) BNCG_REQUIRE(seen[k], "shard json: missing key");
  BNCG_REQUIRE(format == "bncg-shard", "shard json: not a shard document");
  BNCG_REQUIRE(version == kShardWireVersion, "shard json: unsupported version");
  validate_shard(r);
  // Same integrity bar as the binary format: the checksum must match the
  // canonical body re-encoded from what was just parsed, so value-level
  // tampering is caught, not only structural damage.
  const std::string body = encode_body(r);
  BNCG_REQUIRE(fnv1a64(body.data(), body.size()) == checksum, "shard json: checksum mismatch");
  return r;
}

ShardResult shard_from_bytes(std::string_view bytes) {
  if (bytes.substr(0, kShardWireMagic.size()) == kShardWireMagic) {
    return shard_from_binary(bytes);
  }
  return shard_from_json(bytes);
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  // Crash-safe: write <path>.tmp, fsync, rename(2) into place, fsync the
  // directory entry. A process killed mid-write leaves at most a stale
  // .tmp — never a truncated file at the path a reader will trust.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw std::runtime_error("shard wire: cannot open for writing: " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t rc = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("shard wire: write failed: " + tmp);
    }
    written += static_cast<std::size_t>(rc);
  }
  if (::fsync(fd) < 0 || ::close(fd) < 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("shard wire: fsync/close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("shard wire: rename failed: " + path);
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void write_shard_file(const std::string& path, const ShardResult& shard,
                      ShardWireFormat format) {
  write_file_atomic(path, format == ShardWireFormat::Binary ? shard_to_binary(shard)
                                                            : shard_to_json(shard));
}

ShardResult read_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("shard wire: cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) throw std::runtime_error("shard wire: read failed: " + path);
  return shard_from_bytes(buffer.str());
}

}  // namespace bncg

// Usage-cost models of the two basic network creation games.
//
// sum version — cost(v) = Σ_u d(v, u)    (distance sum)
// max version — cost(v) = max_u d(v, u)  (local diameter / eccentricity)
//
// Disconnection means infinite usage cost in both models: a move that
// disconnects the agent from anyone is never improving, and deleting a
// bridge "strictly increases" cost. kInfCost is the sentinel.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Which usage cost the agents minimize.
enum class UsageCost {
  Sum,  ///< Σ distances (sum equilibrium, §3)
  Max,  ///< local diameter (max equilibrium, §4)
};

/// Infinite usage cost (agent disconnected from some vertex).
inline constexpr std::uint64_t kInfCost = std::numeric_limits<std::uint64_t>::max();

/// Usage cost of vertex `v` under `model`; kInfCost when v cannot reach all
/// vertices. One BFS, allocation-free given the workspace.
[[nodiscard]] inline std::uint64_t vertex_cost(const Graph& g, Vertex v, UsageCost model,
                                               BfsWorkspace& ws) {
  const BfsResult r = bfs(g, v, ws);
  if (!r.spans(g.num_vertices())) return kInfCost;
  return model == UsageCost::Sum ? r.dist_sum : r.ecc;
}

/// Usage cost capped for early exit: in the Max model, a BFS truncated at
/// `cap` suffices to decide whether cost(v) ≤ cap (cheaper than a full BFS
/// when testing "does this swap drop my eccentricity below e?").
[[nodiscard]] inline bool vertex_cost_at_most(const Graph& g, Vertex v, UsageCost model,
                                              std::uint64_t cap, BfsWorkspace& ws) {
  if (model == UsageCost::Max) {
    const BfsResult r = bfs_bounded(g, v, static_cast<Vertex>(cap), ws);
    return r.spans(g.num_vertices());  // all reached within distance cap
  }
  return vertex_cost(g, v, model, ws) <= cap;
}

/// Bounded query returning the *exact* cost when it is ≤ cap, nullopt
/// otherwise. In the Max model this is still a single truncated BFS: when
/// every vertex is reached within `cap`, the truncation never cut a shortest
/// path, so the traversal's aggregates are exact — callers that previously
/// paired vertex_cost_at_most with a second full vertex_cost get both
/// answers from one traversal.
[[nodiscard]] inline std::optional<std::uint64_t> vertex_cost_within(const Graph& g, Vertex v,
                                                                     UsageCost model,
                                                                     std::uint64_t cap,
                                                                     BfsWorkspace& ws) {
  if (model == UsageCost::Max) {
    const BfsResult r = bfs_bounded(g, v, static_cast<Vertex>(cap), ws);
    if (!r.spans(g.num_vertices())) return std::nullopt;
    return r.ecc;
  }
  const std::uint64_t cost = vertex_cost(g, v, model, ws);
  if (cost > cap) return std::nullopt;
  return cost;
}

}  // namespace bncg

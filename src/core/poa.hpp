// Price-of-anarchy observables.
//
// The paper's central question — how large can equilibrium diameter get —
// is, by the constant-factor relation proved in [7] and recalled in §1,
// equivalent to the price of anarchy of the surrounding network creation
// games. This module computes the quantities the benches report:
// equilibrium social cost, lower bounds on the best achievable social cost
// at the same edge budget (the basic game relocates but never creates
// edges), and the diameter-based PoA proxy.
#pragma once

#include <cstdint>

#include "core/usage_cost.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Lower bound on Σ_v Σ_u d(v,u) over all connected graphs with n vertices
/// and m edges: ordered adjacent pairs cost 1, all other ordered pairs cost
/// ≥ 2, so total ≥ 2m + 2·(n(n−1) − 2m) = 2n(n−1) − 2m. Tight exactly for
/// diameter ≤ 2 graphs.
[[nodiscard]] std::uint64_t sum_social_cost_lower_bound(Vertex n, std::size_t m);

/// Lower bound on Σ_v ecc(v) at the same budget: every vertex not adjacent
/// to all others has ecc ≥ 2, and at most min(n, 2m/(n−1)) vertices can have
/// degree n−1.
[[nodiscard]] std::uint64_t max_social_cost_lower_bound(Vertex n, std::size_t m);

/// Price-of-anarchy style ratio: social cost of `g` over the corresponding
/// lower bound at g's own (n, m). ≥ 1; equals 1 for diameter-2 graphs in
/// the sum model. Returns +inf (as a large double) when g is disconnected.
[[nodiscard]] double social_cost_ratio(const Graph& g, UsageCost model);

/// The diameter-based PoA proxy from [7]: the price of anarchy is within a
/// constant factor of the maximum equilibrium diameter, so benches report
/// diameter alongside the cost ratio.
[[nodiscard]] double diameter_poa_proxy(const Graph& g);

/// Largest k in [0, k_max] that EVERY agent tolerates: the graph is k-stable
/// under simultaneous insertions but some agent improves with k+1 (unless
/// k == k_max). This is Theorem 12's computational-power axis; routed
/// through the SwapEngine k-insertion sweep (core/kstability), so it is the
/// first equilibrium observable feasible at engine speed for PoA atlases.
/// Requires a connected graph.
[[nodiscard]] Vertex equilibrium_k_tolerance(const Graph& g, Vertex k_max);

/// One-call bundle of the equilibrium observables the benches and the future
/// atlas pipeline report, every verdict routed through the delta engines.
struct PoaReport {
  double sum_ratio = 1.0;        ///< social_cost_ratio(g, Sum)
  double max_ratio = 1.0;        ///< social_cost_ratio(g, Max)
  double diameter_proxy = 0.0;   ///< diameter_poa_proxy(g)
  bool sum_swap_stable = false;  ///< certify_sum_equilibrium(g)
  bool max_swap_stable = false;  ///< certify_max_equilibrium(g)
  Vertex k_tolerance = 0;        ///< equilibrium_k_tolerance(g, k_max)
};
[[nodiscard]] PoaReport poa_report(const Graph& g, Vertex k_max);

}  // namespace bncg

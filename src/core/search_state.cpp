#include "core/search_state.hpp"

#include "core/swap_engine.hpp"
#include "graph/bfs.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace bncg {

namespace {

// The capped combine/deletion reductions, the scan-table min folds, the
// addition-identity row stream, and the far/dirty-row filters live in the
// runtime-dispatched kernel tables of util/simd.hpp; the scalar references
// in util/simd.cpp preserve these loops' exact wrap and strict-'<' tie-break
// semantics. Kernels report "unreachable" as simd::kInfCostResult:
static_assert(simd::kInfCostResult == kInfCost,
              "kernel infinite-cost sentinel must match core's kInfCost");

/// Exact saturation pre-check for adding edge {u, v} on a capped-infinity
/// matrix (`row_u`/`row_v` are the pre-update endpoint rows). Distances can
/// only *shrink* under an addition, so a new finite value above the cap can
/// appear only when the edge **bridges** two components (some pair flips
/// from ∞ to finite) — i.e. when d(u, v) = ∞ — and the largest new finite
/// distance is then exactly eccf(u) + 1 + eccf(v) (finite eccentricities,
/// realized by the farthest pair across the bridge: that pair's only route
/// runs through the new edge). Checking that sum against kMaxFinite is
/// therefore exact, costs one vectorizable max-scan of the two stashed
/// rows, and keeps the row kernel itself pure add/min. At u16 the test can
/// never fire: the two components together hold ≤ n ≤ kMaxFinite + 1
/// vertices, so eccf(u) + 1 + eccf(v) ≤ n − 1 ≤ kMaxFinite.
template <typename Dist>
[[nodiscard]] bool addition_saturates(const Dist* row_u, const Dist* row_v, Vertex v, Vertex n,
                                      Dist inf) {
  if (row_u[v] < inf) return false;  // same component: distances only shrink
  Dist ecc_u = 0;
  Dist ecc_v = 0;
  simd::kernels<Dist>().finite_max2(row_u, row_v, n, inf, &ecc_u, &ecc_v);
  return std::uint32_t{ecc_u} + 1 + ecc_v > kMaxFiniteFor<Dist>;
}

/// Single-edge-addition identity on a capped-infinity distance matrix:
/// d'(x,y) = min(d(x,y), d(x,u)+1+d(v,y), d(x,v)+1+d(u,y)). `ru`/`rv` hold
/// the pre-update rows of u and v; all arithmetic stays ≤ 2·kInf + 1 (two
/// chained adds of capped values), which fits the storage type at either
/// width — 127 < 2⁸, 2¹⁵ < 2¹⁶ — so the loop is branch-free add/min and
/// vectorizes under -O3 (twice as many lanes in u8). Callers must have run
/// addition_saturates first: a "fake" sum through an ∞ component is ≥
/// kInf + 1 and the final clamp maps it back to ∞, which is only correct
/// when no genuine finite distance lives above the cap.
template <typename Dist>
void addition_row(const Dist* src_row, Dist* dst_row, const Dist* ru, const Dist* rv, Vertex u,
                  Vertex v, Vertex n, Dist inf) {
  const Dist au = static_cast<Dist>(src_row[u] + 1);
  const Dist av = static_cast<Dist>(src_row[v] + 1);
  simd::kernels<Dist>().addition_row(src_row, dst_row, ru, rv, au, av, n, inf);
}

// Row-level no-op test for adding edge {u, v} (the collect_absdiff_gt1 call
// sites): if |d(x,u) − d(x,v)| ≤ 1, no pair (x, y) gains a shortcut —
// d(x,u)+1+d(v,y) ≥ d(x,v)+d(v,y) ≥ d(x,y) by the triangle inequality (and
// symmetrically) — so row x is unchanged and only rows with diff > 1 need
// the formula pass. In small-diameter graphs that is few of them. Sound on
// capped values because the largest finite distance is kInf − 2: a capped ∞
// differs from every finite value by ≥ 2, so the test can never conflate
// "unreachable" with "one hop closer".

/// Dirty-row test for removing edge {u, v}: a shortest path from x crossing
/// u→v reaches u shortest-ly (prefixes of shortest paths are shortest), so
/// the edge lies on some shortest path from x iff |d(x,u) − d(x,v)| = 1.
/// Rows failing the test are exactly the rows the removal cannot change
/// (same kInf − 2 cap argument as addition_leaves_row).
template <typename Dist>
void collect_dirty_rows(const Dist* row_u, const Dist* row_v, Vertex n,
                        std::vector<Vertex>& out) {
  out.resize(n);
  out.resize(simd::kernels<Dist>().collect_absdiff_eq1(row_u, row_v, n, out.data()));
}

/// Removes row x's contribution from the R1 relief bound (no-op when r1 is
/// null, i.e. the max model). Must run with the row's pre-update content and
/// pre-update min1[x], so the subtraction exactly cancels what the row
/// previously added.
template <typename Dist>
void table_sub_row(std::uint32_t* r1, Dist min1x, const Dist* row, Vertex n) {
  if (r1 == nullptr) return;
  simd::kernels<Dist>().r1_sub(r1, min1x, row, n);
}

/// Refolds coordinate x's neighbor minima from the row's new content and
/// adds the row's new R1 contribution.
template <typename Dist>
void table_add_row(Dist* min1, Dist* min2, Vertex* argmin, std::uint32_t* r1, Vertex x,
                   const Dist* row, const Vertex* nbrs, std::size_t deg, Vertex n, Dist inf) {
  Dist m1 = inf;
  Dist m2 = inf;
  Vertex am = kNoVertex;
  for (std::size_t i = 0; i < deg; ++i) {
    const Dist val = row[nbrs[i]];
    if (val < m1) {
      m2 = m1;
      m1 = val;
      am = nbrs[i];
    } else if (val < m2) {
      m2 = val;
    }
  }
  min1[x] = m1;
  min2[x] = m2;
  argmin[x] = am;
  if (r1 == nullptr) return;
  simd::kernels<Dist>().r1_add(r1, m1, row, n);
}

/// Thresholds above this are effectively infinite: the R1 prune comparison
/// adds R1 (≤ n · kInf) to the threshold, and skipping the prune for huge
/// thresholds keeps that addition overflow-free.
constexpr std::uint64_t kPruneThresholdCap = std::uint64_t{1} << 40;

}  // namespace

bool search_state_enabled(const Graph& g) {
  return !force_naive_requested() && g.num_vertices() <= kSearchStateAutoMaxVertices;
}

template <typename Dist>
SearchStateImpl<Dist>::SearchStateImpl(const Graph& g, UsageCost model, bool include_deletions,
                                       bool parallel)
    : graph_(g),
      csr_(g),
      model_(model),
      include_deletions_(model == UsageCost::Max && include_deletions),
      parallel_(parallel),
      n_(g.num_vertices()) {
  BNCG_REQUIRE(n_ >= 1 && n_ <= kMaxFiniteFor<std::uint16_t> + 1,
               "SearchState requires 1 <= n <= 16382");
  const std::size_t nn = static_cast<std::size_t>(n_) * n_;
  full_[0].resize(nn);
  full_[1].resize(nn);
  for (int s = 0; s < 2; ++s) {
    rowsum_[s].resize(n_);
    rowmax_[s].resize(n_);
  }
  version_.assign(n_, kUnbuilt);
  table_version_.assign(n_, kUnbuilt);
  scratch_.resize(1);

  std::vector<Vertex> all(n_);
  std::iota(all.begin(), all.end(), Vertex{0});
  refresh_rows(csr_, all, MaskedEdge{}, full_rows(fcur_), scratch_[0].bfs, kNoVertex);
  refresh_shape(fcur_);
}

template <typename Dist>
void SearchStateImpl<Dist>::refresh_rows(const CsrGraph& g, std::span<const Vertex> sources,
                                         MaskedEdge mask, Dist* matrix, BatchBfsWorkspace& bfs,
                                         Vertex masked_vertex) {
  if (!csr_apsp_rows_capped<Dist>(g, sources, mask, matrix, n_, bfs, masked_vertex, kInf,
                                  kMaxFinite)) {
    throw WidthSaturated{};
  }
}

template <typename Dist>
Vertex SearchStateImpl<Dist>::diameter() const noexcept {
  return diameter_[fcur_];
}

template <typename Dist>
bool SearchStateImpl<Dist>::connected() const noexcept {
  return diameter_[fcur_] != kInfDist;
}

template <typename Dist>
void SearchStateImpl<Dist>::refresh_shape(std::size_t slab) {
  const Vertex n = n_;
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Dist* rows = full_[slab].data();
  std::uint32_t* rowsum = rowsum_[slab].data();
  Dist* rowmax = rowmax_[slab].data();
  Vertex worst = 0;
  bool disconnected = false;
  for (Vertex a = 0; a < n; ++a) {
    const Dist* row = rows + static_cast<std::size_t>(a) * n;
    std::uint32_t sum = 0;
    Dist mx = 0;
    kern.row_sum_max(row, n, &sum, &mx);
    rowsum[a] = sum;
    rowmax[a] = mx;
    if (mx >= kInf) disconnected = true;
    worst = std::max<Vertex>(worst, mx);
  }
  diameter_[slab] = disconnected ? kInfDist : worst;
}

template <typename Dist>
std::uint64_t SearchStateImpl<Dist>::agent_cost_from_full(std::size_t slab, Vertex a) const {
  if (rowmax_[slab][a] >= kInf) return kInfCost;
  return model_ == UsageCost::Sum ? rowsum_[slab][a] : rowmax_[slab][a];
}

template <typename Dist>
void SearchStateImpl<Dist>::ensure_slabs() {
  if (!agents_.empty()) return;
  agents_.resize(static_cast<std::size_t>(n_) * n_ * n_);
}

template <typename Dist>
void SearchStateImpl<Dist>::rebuild_agent(Vertex a, Scratch& s) {
  s.sources.resize(n_);
  std::iota(s.sources.begin(), s.sources.end(), Vertex{0});
  refresh_rows(csr_, s.sources, MaskedEdge{}, agent_rows(a), s.bfs, /*masked_vertex=*/a);
}

template <typename Dist>
void SearchStateImpl<Dist>::ensure_agent_current(Vertex a, Scratch& s) {
  if (version_[a] == head_) return;
  ensure_slabs();
  if (version_[a] == kUnbuilt || head_ - version_[a] > kReplayLimit) {
    rebuild_agent(a, s);
    version_[a] = head_;
    table_version_[a] = kUnbuilt;
    return;
  }
  Dist* rows = agent_rows(a);
  const Vertex n = n_;
  // The cached scan tables ride along through the replay when they are in
  // lockstep with the matrix: each changed row's old contribution is
  // subtracted before the update and its new one added after. A toggle
  // incident to a changes the neighbor set the tables were folded over, so
  // any such toggle in the window invalidates them. Tables AHEAD of the
  // matrix (a committed proposal's tables flipped in before the matrix
  // caught up) are left untouched — they already describe the target state.
  const bool maintain = table_version_[a] != kUnbuilt && table_version_[a] == version_[a];
  bool tables_live = maintain;
  for (std::uint64_t i = version_[a]; tables_live && i < head_; ++i) {
    const Toggle& t = log_[static_cast<std::size_t>(i - log_base_)];
    if (t.u == a || t.v == a) tables_live = false;
  }
  Dist* min1 = tables_live ? table_min1(a) : nullptr;
  Dist* min2 = tables_live ? table_min2(a) : nullptr;
  Vertex* argmin = tables_live ? table_argmin(a) : nullptr;
  std::uint32_t* r1 = tables_live && model_ == UsageCost::Sum ? table_r1(a) : nullptr;
  const auto nbrs = csr_.neighbors(a);

  for (std::uint64_t i = version_[a]; i < head_; ++i) {
    const Toggle& t = log_[static_cast<std::size_t>(i - log_base_)];
    if (t.u == a || t.v == a) continue;  // edges at the masked vertex vanish
    if (t.add) {
      // In-place formula replay: stash the pre-update endpoint rows first,
      // then touch only the rows the addition can change — row x is
      // unchanged when |d(x,u) − d(x,v)| ≤ 1 (no pair gains a shortcut by
      // the triangle inequality), read off the stashed rows by symmetry.
      s.row_u.assign(rows + static_cast<std::size_t>(t.u) * n,
                     rows + static_cast<std::size_t>(t.u) * n + n);
      s.row_v.assign(rows + static_cast<std::size_t>(t.v) * n,
                     rows + static_cast<std::size_t>(t.v) * n + n);
      const Dist* ru = s.row_u.data();
      const Dist* rv = s.row_v.data();
      if (addition_saturates(ru, rv, t.v, n, kInf)) throw WidthSaturated{};
      s.sources.resize(n);
      s.sources.resize(simd::kernels<Dist>().collect_absdiff_gt1(ru, rv, n, s.sources.data()));
      for (const Vertex x : s.sources) {
        Dist* row = rows + static_cast<std::size_t>(x) * n;
        if (tables_live) table_sub_row(r1, min1[x], row, n);
        addition_row(row, row, ru, rv, t.u, t.v, n, kInf);
        if (tables_live) {
          table_add_row(min1, min2, argmin, r1, x, row, nbrs.data(), nbrs.size(), n, kInf);
        }
      }
    } else {
      collect_dirty_rows(rows + static_cast<std::size_t>(t.u) * n,
                         rows + static_cast<std::size_t>(t.v) * n, n, s.sources);
      s.stats.rows_refreshed += s.sources.size();
      s.stats.rows_reused += n - s.sources.size();
      if (tables_live) {
        for (const Vertex x : s.sources) {
          table_sub_row(r1, min1[x], rows + static_cast<std::size_t>(x) * n, n);
        }
      }
      refresh_rows(*t.before, s.sources, MaskedEdge{t.u, t.v}, rows, s.bfs,
                   /*masked_vertex=*/a);
      if (tables_live) {
        for (const Vertex x : s.sources) {
          table_add_row(min1, min2, argmin, r1, x, rows + static_cast<std::size_t>(x) * n,
                        nbrs.data(), nbrs.size(), n, kInf);
        }
      }
    }
  }
  version_[a] = head_;
  if (maintain) table_version_[a] = tables_live ? head_ : kUnbuilt;
}

template <typename Dist>
void SearchStateImpl<Dist>::ensure_table_slabs() {
  if (!tmin1_[0].empty()) return;
  const std::size_t total = static_cast<std::size_t>(n_) * n_;
  for (int set = 0; set < 2; ++set) {
    tmin1_[set].resize(total);
    tmin2_[set].resize(total);
    targmin_[set].resize(total);
    if (model_ == UsageCost::Sum) tr1_[set].resize(total);
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::store_shadow_tables(Vertex a, const Scratch& s) {
  const std::size_t shadow = 1 - tcur_;
  const std::size_t off = static_cast<std::size_t>(a) * n_;
  std::memcpy(tmin1_[shadow].data() + off, s.min1.data(), n_ * sizeof(Dist));
  std::memcpy(tmin2_[shadow].data() + off, s.min2.data(), n_ * sizeof(Dist));
  std::memcpy(targmin_[shadow].data() + off, s.argmin.data(), n_ * sizeof(Vertex));
  if (model_ == UsageCost::Sum) {
    std::memcpy(tr1_[shadow].data() + off, s.r1.data(), n_ * sizeof(std::uint32_t));
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::ensure_tables(Vertex a, Scratch& s) {
  if (table_version_[a] == head_) return;
  ensure_table_slabs();
  // Full rebuild from the (current) matrix via the generic pass, then keep
  // the result as the persistent tables for this agent.
  const auto nbrs = csr_.neighbors(a);
  s.nbrs.assign(nbrs.begin(), nbrs.end());
  prepare_scan(agent_rows(a), a, s, model_ == UsageCost::Sum);
  const Vertex n = n_;
  std::memcpy(table_min1(a), s.min1.data(), n * sizeof(Dist));
  std::memcpy(table_min2(a), s.min2.data(), n * sizeof(Dist));
  std::memcpy(table_argmin(a), s.argmin.data(), n * sizeof(Vertex));
  if (model_ == UsageCost::Sum) {
    std::memcpy(table_r1(a), s.r1.data(), n * sizeof(std::uint32_t));
  }
  table_version_[a] = head_;
}

template <typename Dist>
void SearchStateImpl<Dist>::load_tables(Vertex a, Scratch& s) {
  const Vertex n = n_;
  s.min1.assign(table_min1(a), table_min1(a) + n);
  s.min2.assign(table_min2(a), table_min2(a) + n);
  s.argmin.assign(table_argmin(a), table_argmin(a) + n);
  if (model_ == UsageCost::Sum) {
    s.r1.assign(table_r1(a), table_r1(a) + n);
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::merge_stats(Scratch& s) {
  stats_.rows_refreshed += s.stats.rows_refreshed;
  stats_.rows_reused += s.stats.rows_reused;
  stats_.agents_scanned += s.stats.agents_scanned;
  stats_.candidates_pruned += s.stats.candidates_pruned;
  stats_.candidates_combined += s.stats.candidates_combined;
  s.stats = SearchStats{};
}

template <typename Dist>
void SearchStateImpl<Dist>::update_full_matrix_addition(Vertex u, Vertex v, std::size_t dst_slab,
                                                        Scratch& s) {
  const Dist* src = full_rows(fcur_);
  Dist* dst = full_[dst_slab].data();
  const Vertex n = n_;
  s.row_u.assign(src + static_cast<std::size_t>(u) * n_,
                 src + static_cast<std::size_t>(u) * n_ + n_);
  s.row_v.assign(src + static_cast<std::size_t>(v) * n_,
                 src + static_cast<std::size_t>(v) * n_ + n_);
  if (addition_saturates(s.row_u.data(), s.row_v.data(), v, n, kInf)) throw WidthSaturated{};
  // One bulk copy, then rewrite only the changed rows (|d(x,u) − d(x,v)| > 1,
  // read off the stashed endpoint rows by symmetry — addition_leaves_row's
  // test, batched): the formula pass reads the intact source row anyway.
  std::memcpy(dst, src, static_cast<std::size_t>(n) * n * sizeof(Dist));
  s.sources.resize(n);
  s.sources.resize(simd::kernels<Dist>().collect_absdiff_gt1(s.row_u.data(), s.row_v.data(), n,
                                                             s.sources.data()));
  for (const Vertex x : s.sources) {
    addition_row(src + static_cast<std::size_t>(x) * n, dst + static_cast<std::size_t>(x) * n,
                 s.row_u.data(), s.row_v.data(), u, v, n, kInf);
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::update_full_matrix_removal(Vertex u, Vertex v, std::size_t dst_slab,
                                                       Scratch& s) {
  const Dist* src = full_rows(fcur_);
  Dist* dst = full_[dst_slab].data();
  std::memcpy(dst, src, static_cast<std::size_t>(n_) * n_ * sizeof(Dist));
  collect_dirty_rows(src + static_cast<std::size_t>(u) * n_,
                     src + static_cast<std::size_t>(v) * n_, n_, s.sources);
  s.stats.rows_refreshed += s.sources.size();
  s.stats.rows_reused += n_ - s.sources.size();
  refresh_rows(csr_, s.sources, MaskedEdge{u, v}, dst, s.bfs, kNoVertex);
}

template <typename Dist>
ToggleShape SearchStateImpl<Dist>::propose_toggle(Vertex u, Vertex v) {
  BNCG_REQUIRE(u != v && u < n_ && v < n_, "toggle endpoints must be distinct in-range vertices");
  staged_ = true;
  evaluated_ = false;
  staged_u_ = u;
  staged_v_ = v;
  staged_add_ = !graph_.has_edge(u, v);
  ++stats_.proposals;
  const std::size_t shadow = 1 - fcur_;
  if (staged_add_) {
    update_full_matrix_addition(u, v, shadow, scratch_[0]);
  } else {
    update_full_matrix_removal(u, v, shadow, scratch_[0]);
  }
  refresh_shape(shadow);
  merge_stats(scratch_[0]);
  return {diameter_[shadow] != kInfDist, diameter_[shadow]};
}

template <typename Dist>
void SearchStateImpl<Dist>::proposal_neighbors(Vertex a, Vertex tu, Vertex tv, bool add,
                                               bool staged, std::vector<Vertex>& out) const {
  const auto base = csr_.neighbors(a);
  out.assign(base.begin(), base.end());
  if (!staged || (a != tu && a != tv)) return;
  const Vertex other = a == tu ? tv : tu;
  if (add) {
    out.insert(std::lower_bound(out.begin(), out.end(), other), other);
  } else {
    out.erase(std::lower_bound(out.begin(), out.end(), other));
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::stream_addition(Vertex a, Vertex u, Vertex v, Scratch& s) {
  // Matrix and tables are current (the caller ran ensure_agent_current and
  // ensure_tables); derive the proposal's tables by delta: rows the addition
  // provably leaves alone (|d(x,u) − d(x,v)| ≤ 1, read off the stashed
  // endpoint rows by symmetry) keep serving from the cache and are never
  // read; changed rows swap their old contribution for the new one.
  const Dist* src = agent_rows(a);
  const Vertex n = n_;
  const bool want_r1 = model_ == UsageCost::Sum;
  load_tables(a, s);
  s.proposal_rows.resize(static_cast<std::size_t>(n) * n);
  s.rowptr.resize(n);
  s.row_u.assign(src + static_cast<std::size_t>(u) * n,
                 src + static_cast<std::size_t>(u) * n + n);
  s.row_v.assign(src + static_cast<std::size_t>(v) * n,
                 src + static_cast<std::size_t>(v) * n + n);
  const Dist* ru = s.row_u.data();
  const Dist* rv = s.row_v.data();
  if (addition_saturates(ru, rv, v, n, kInf)) throw WidthSaturated{};
  Dist* scratch_rows = s.proposal_rows.data();
  const Dist** rowptr = s.rowptr.data();
  Dist* min1 = s.min1.data();
  Dist* min2 = s.min2.data();
  Vertex* argmin = s.argmin.data();
  std::uint32_t* r1 = want_r1 ? s.r1.data() : nullptr;
  for (Vertex x = 0; x < n; ++x) rowptr[x] = src + static_cast<std::size_t>(x) * n;
  s.sources.resize(n);
  s.sources.resize(simd::kernels<Dist>().collect_absdiff_gt1(ru, rv, n, s.sources.data()));
  for (const Vertex x : s.sources) {
    const Dist* srow = src + static_cast<std::size_t>(x) * n;
    Dist* drow = scratch_rows + static_cast<std::size_t>(x) * n;
    table_sub_row(r1, min1[x], srow, n);
    addition_row(srow, drow, ru, rv, u, v, n, kInf);
    table_add_row(min1, min2, argmin, r1, x, drow, s.nbrs.data(), s.nbrs.size(), n, kInf);
    rowptr[x] = drow;
  }
}

/// Builds min1/min2/argmin (coordinate-wise neighbor minima) and optionally
/// the R1 relief bound from the per-row sources in scratch.rowptr.
///
/// The fold runs row-major over the NEIGHBOR rows instead of gathering the
/// neighbor columns of every row x: the virtual matrix M[x][y] = rowptr[x][y]
/// is exactly symmetric (cached rows and delta-streamed proposal rows alike
/// are rows of one masked distance matrix — the no-op row tests are exact,
/// so clean rows equal their proposal counterparts), hence
///   min_{z ∈ nbrs} M[x][z] = min_{z ∈ nbrs} M[z][x]
/// and folding neighbor z's row elementwise into (min1, min2, argmin) visits
/// the same values in the same z order as the gather — every strict-'<'
/// argmin tie-break is preserved bit for bit. The payoff: unit-stride
/// streams the SIMD scan_min_update kernel eats, instead of deg gathers per
/// row (and no manual prefetch).
template <typename Dist>
void SearchStateImpl<Dist>::scan_tables(Scratch& s, bool want_r1) {
  const Vertex n = n_;
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  s.min1.assign(n, kInf);
  s.min2.assign(n, kInf);
  s.argmin.assign(n, kNoVertex);
  if (want_r1) s.r1.assign(n, 0);
  for (const Vertex z : s.nbrs) {
    kern.scan_min_update(s.min1.data(), s.min2.data(), s.argmin.data(), s.rowptr[z], z, n);
  }
  if (want_r1) {
    // Second pass once min1 is final — the gather form also read min1[x]
    // only after x's full neighbor fold.
    std::uint32_t* r1 = s.r1.data();
    for (Vertex x = 0; x < n; ++x) {
      kern.r1_add(r1, s.min1[x], s.rowptr[x], n);
    }
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::stream_removal(Vertex a, Vertex u, Vertex v, Scratch& s) {
  // Same delta scheme as stream_addition, with the dirty rows re-traversed
  // into their scratch slots; clean rows keep serving from the cache.
  const Dist* src = agent_rows(a);
  const Vertex n = n_;
  const bool want_r1 = model_ == UsageCost::Sum;
  load_tables(a, s);
  s.proposal_rows.resize(static_cast<std::size_t>(n) * n);
  s.rowptr.resize(n);
  collect_dirty_rows(src + static_cast<std::size_t>(u) * n,
                     src + static_cast<std::size_t>(v) * n, n, s.sources);
  s.stats.rows_refreshed += s.sources.size();
  s.stats.rows_reused += n - s.sources.size();
  Dist* min1 = s.min1.data();
  Dist* min2 = s.min2.data();
  Vertex* argmin = s.argmin.data();
  std::uint32_t* r1 = want_r1 ? s.r1.data() : nullptr;
  for (const Vertex x : s.sources) {
    table_sub_row(r1, min1[x], src + static_cast<std::size_t>(x) * n, n);
  }
  refresh_rows(csr_, s.sources, MaskedEdge{u, v}, s.proposal_rows.data(), s.bfs,
               /*masked_vertex=*/a);
  for (Vertex x = 0; x < n; ++x) s.rowptr[x] = src + static_cast<std::size_t>(x) * n;
  for (const Vertex x : s.sources) {
    const Dist* drow = s.proposal_rows.data() + static_cast<std::size_t>(x) * n;
    table_add_row(min1, min2, argmin, r1, x, drow, s.nbrs.data(), s.nbrs.size(), n, kInf);
    s.rowptr[x] = drow;
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::prepare_scan(const Dist* rows, Vertex a, Scratch& s, bool want_r1) {
  (void)a;
  const Vertex n = n_;
  s.rowptr.resize(n);
  for (Vertex x = 0; x < n; ++x) s.rowptr[x] = rows + static_cast<std::size_t>(x) * n;
  scan_tables(s, want_r1);
}

template <typename Dist>
typename SearchStateImpl<Dist>::ScanResult SearchStateImpl<Dist>::scan_agent(
    Vertex a, std::uint64_t old_cost, bool include_deletions, ScanMode mode, Scratch& s,
    bool r1_valid) {
  ScanResult result;
  ++s.stats.agents_scanned;
  if (s.nbrs.empty()) return result;
  const Vertex n = n_;
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Dist* const* rowptr = s.rowptr.data();

  s.is_nbr.assign(n, 0);
  s.is_nbr[a] = 1;
  for (const Vertex w : s.nbrs) s.is_nbr[w] = 1;
  s.mrow.resize(n);
  s.far.resize(n);

  // Sum-model prune, valid for EVERY removed edge w at once: with
  // base = Σ_{y≠a} min1_y and R1[w2] = Σ_y max(0, min1_y − c_{w2,y}),
  //   cost(w, w2) = (n−1) + Σ_y M^w_y − relief(w, w2)
  //               ≥ (n−1) + base − R1[w2],
  // because Σ_y M^w_y exceeds base by the same owned slack
  // Σ_{argmin_y=w} (min2_y − min1_y) by which R1[w2] + slack bounds the
  // relief (max(0, x+δ) ≤ max(0, x) + δ for δ ≥ 0) — the slack cancels.
  // min1[a] = ∞ (every neighbor row is ∞ at the masked vertex) and M^w_a is
  // pinned to 0, matching R1's zero contribution at coordinate a.
  std::uint64_t base_sum = 0;
  if (model_ == UsageCost::Sum) {
    for (Vertex y = 0; y < n; ++y) base_sum += s.min1[y];
    base_sum -= s.min1[a];  // pin M^w_a = 0

    // Static survivor list against the fixed old_cost threshold: skipped
    // candidates satisfy lb ≥ old_cost ≥ every later dynamic threshold, so
    // dropping them up front cannot change any witness or value.
    s.cands.clear();
    const bool can_prune = r1_valid && old_cost < kPruneThresholdCap;
    for (Vertex w2 = 0; w2 < n; ++w2) {
      if (s.is_nbr[w2] != 0) continue;
      if (can_prune && std::uint64_t{n - 1} + base_sum >= old_cost + s.r1[w2]) {
        s.stats.candidates_pruned += s.nbrs.size();
        continue;
      }
      s.cands.push_back(w2);
    }
  }

  std::optional<Deviation> best;
  std::uint64_t best_cost = kInfCost;
  const auto accept_threshold = [&]() {
    return mode == ScanMode::First ? old_cost : std::min(old_cost, best_cost);
  };

  for (const Vertex w : s.nbrs) {
    Dist* m = s.mrow.data();
    kern.select_mrow(m, s.min1.data(), s.min2.data(), s.argmin.data(), w, n);
    m[a] = 0;

    if (model_ == UsageCost::Max && include_deletions) {
      const std::uint64_t del_cost = kern.deletion_ecc(m, n, kInf);
      if (del_cost <= old_cost) {
        const Deviation dev{{a, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        result.found = true;
        best_cost = std::min(best_cost, del_cost);
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (mode == ScanMode::First) {
          result.witness = best;
          result.best_cost = best_cost;
          return result;
        }
      }
    }

    if (model_ == UsageCost::Sum) {
      for (const Vertex w2 : s.cands) {
        const std::uint64_t threshold = accept_threshold();
        if (r1_valid && threshold < kPruneThresholdCap &&
            std::uint64_t{n - 1} + base_sum >= threshold + s.r1[w2]) {
          // The dynamic re-check of the same lower bound, against the
          // tightened running-best threshold (ties never displace).
          ++s.stats.candidates_pruned;
          continue;
        }
        ++s.stats.candidates_combined;
        const std::uint64_t new_cost = kern.combine_sum(m, rowptr[w2], n, kInf);
        if (new_cost >= old_cost) continue;
        result.found = true;
        if (new_cost < best_cost) best_cost = new_cost;
        if (!best || new_cost < best->cost_after) {
          best = Deviation{{a, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (mode == ScanMode::First) {
            result.witness = best;
            result.best_cost = best_cost;
            return result;
          }
        }
      }
    } else {
      // Far-set filter with a dynamically tightening cap. In Best/Value
      // modes a candidate is useful only when it beats the running best
      // (or ties a NonCriticalDelete best, which a swap displaces), so the
      // cap shrinks below the engine's old_cost − 2 as soon as a better
      // deviation is found; candidates failing the tighter test have
      // new_cost ≥ threshold and could never be accepted. The FAR1 list
      // (min1-based, valid for every removed edge since M^w ≥ min1) first
      // drops candidates that fail for ALL w at once.
      const auto max_threshold = [&]() {
        if (mode == ScanMode::First) return old_cost;
        std::uint64_t t = old_cost;
        if (best) {
          // A swap displaces a NonCriticalDelete best on ties, so the
          // delete's threshold is one above its cost (saturating: a
          // disconnected delete at kInfCost constrains nothing).
          const std::uint64_t displace =
              best->kind == Deviation::Kind::NonCriticalDelete
                  ? (best->cost_after == kInfCost ? kInfCost : best->cost_after + 1)
                  : best->cost_after;
          t = std::min(t, displace);
        }
        return t;
      }();
      const std::int32_t cap = max_threshold == kInfCost
                                   ? std::int32_t{kInf} - 1
                                   : static_cast<std::int32_t>(max_threshold) - 2;
      if (w == s.nbrs.front()) {
        const std::int32_t cap0 = old_cost == kInfCost
                                      ? std::int32_t{kInf} - 1
                                      : static_cast<std::int32_t>(old_cost) - 2;
        const std::uint32_t far1 = kern.collect_above(s.min1.data(), n, cap0, a, s.far.data());
        s.cands.clear();
        for (Vertex w2 = 0; w2 < n; ++w2) {
          if (s.is_nbr[w2] != 0) continue;
          const Dist* c = rowptr[w2];
          bool viable = true;
          for (std::uint32_t i = 0; i < far1; ++i) {
            if (c[s.far[i]] > cap0) {
              viable = false;
              break;
            }
          }
          if (!viable) {
            s.stats.candidates_pruned += s.nbrs.size();
            continue;
          }
          s.cands.push_back(w2);
        }
      }
      const std::uint32_t far_count = kern.collect_above(m, n, cap, a, s.far.data());
      for (const Vertex w2 : s.cands) {
        const Dist* c = rowptr[w2];
        bool improves = true;
        for (std::uint32_t i = 0; i < far_count; ++i) {
          if (c[s.far[i]] > cap) {
            improves = false;
            break;
          }
        }
        if (!improves) {
          ++s.stats.candidates_pruned;
          continue;
        }
        ++s.stats.candidates_combined;
        const std::uint64_t new_cost = kern.combine_max(m, c, n, kInf);
        if (new_cost >= max_threshold && mode != ScanMode::First) {
          // The far test ran against a stale (looser) cap from before a
          // best-update in this same w-iteration; the exact cost settles it.
          continue;
        }
        result.found = true;
        best_cost = std::min(best_cost, new_cost);
        if (!best || new_cost < best->cost_after ||
            (best->kind == Deviation::Kind::NonCriticalDelete && new_cost <= best->cost_after)) {
          best = Deviation{{a, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (mode == ScanMode::First) {
            result.witness = best;
            result.best_cost = best_cost;
            return result;
          }
        }
      }
    }
  }
  result.witness = best;
  result.best_cost = best_cost;
  return result;
}

template <typename Dist>
std::uint64_t SearchStateImpl<Dist>::unrest_contribution(const ScanResult& r,
                                                         std::uint64_t old_cost) {
  if (!r.found) return 0;
  const std::uint64_t gain = old_cost > r.best_cost ? old_cost - r.best_cost : 0;
  return std::max<std::uint64_t>(1, gain);
}

template <typename Dist>
std::uint64_t SearchStateImpl<Dist>::evaluate_pass(bool staged) {
  ensure_slabs();
  ensure_table_slabs();  // allocated up front: the parallel region below must not resize
  const std::size_t full_slab = staged ? 1 - fcur_ : fcur_;
  const Vertex tu = staged_u_;
  const Vertex tv = staged_v_;
  const bool add = staged_add_;
  std::uint64_t total = 0;

  const auto evaluate_agent = [&](Vertex a, Scratch& s) -> std::uint64_t {
    const std::uint64_t old_cost = agent_cost_from_full(full_slab, a);
    ensure_agent_current(a, s);
    if (staged && (a == tu || a == tv)) {
      // The toggled edge is incident to a, where it vanishes under the mask
      // (G'−a = G−a) — but the proposal's neighbor set differs from the one
      // the cached tables were folded over, so rebuild them transiently.
      proposal_neighbors(a, tu, tv, add, staged, s.nbrs);
      prepare_scan(agent_rows(a), a, s, model_ == UsageCost::Sum);
    } else if (!staged) {
      ensure_tables(a, s);
      proposal_neighbors(a, tu, tv, add, staged, s.nbrs);
      load_tables(a, s);
      s.rowptr.resize(n_);
      const Dist* rows = agent_rows(a);
      for (Vertex x = 0; x < n_; ++x) {
        s.rowptr[x] = rows + static_cast<std::size_t>(x) * n_;
      }
    } else if (add) {
      ensure_tables(a, s);
      proposal_neighbors(a, tu, tv, add, staged, s.nbrs);
      stream_addition(a, tu, tv, s);
    } else {
      ensure_tables(a, s);
      proposal_neighbors(a, tu, tv, add, staged, s.nbrs);
      stream_removal(a, tu, tv, s);
    }
    if (staged) {
      // The scratch tables describe the staged proposal for this agent;
      // park them in the shadow set so commit() can flip them in as the
      // new current tables without recomputation.
      store_shadow_tables(a, s);
    }
    const ScanResult r =
        scan_agent(a, old_cost, include_deletions_, ScanMode::Value, s, model_ == UsageCost::Sum);
    return unrest_contribution(r, old_cost);
  };

  ThreadPool& pool = ThreadPool::global();
  if (parallel_ && pool.size() > 1) {
    // One persistent Scratch per pool lane (warm across passes — the n×n
    // proposal slab and BFS workspace survive), one unrest accumulator per
    // lane padded to its own cache line. Lane subtotals and lane stats fold
    // serially in lane order after the drain, replacing the old
    // omp-critical merge: unrest contributions are a commutative sum, so
    // the pass total is lane-count- and schedule-invariant either way, and
    // the serial fold makes the stats order deterministic too.
    //
    // A saturating refresh inside the region (u8 only) must not unwind
    // through the pool: park the signal in a flag, drain the remaining
    // iterations, and rethrow it after the pass — the facade discards this
    // whole state on promotion, so the half-updated caches left behind are
    // never read.
    if (scratch_.size() < pool.size()) scratch_.resize(pool.size());
    struct alignas(64) LaneUnrest {
      std::uint64_t sub = 0;
    };
    std::vector<LaneUnrest> lane(pool.size());
    std::atomic<bool> saturated{false};
    pool.parallel_for(n_, /*grain=*/4, [&](std::uint64_t a, unsigned tid) {
      if (saturated.load(std::memory_order_relaxed)) return;
      try {
        lane[tid].sub += evaluate_agent(static_cast<Vertex>(a), scratch_[tid]);
      } catch (const WidthSaturated&) {
        saturated.store(true, std::memory_order_relaxed);
      }
    });
    for (std::size_t t = 0; t < pool.size(); ++t) {
      total += lane[t].sub;
      merge_stats(scratch_[t]);
    }
    if (saturated.load(std::memory_order_relaxed)) throw WidthSaturated{};
    return total;
  }
  for (Vertex a = 0; a < n_; ++a) total += evaluate_agent(a, scratch_[0]);
  merge_stats(scratch_[0]);
  return total;
}

template <typename Dist>
std::uint64_t SearchStateImpl<Dist>::proposal_unrest() {
  BNCG_REQUIRE(staged_, "proposal_unrest requires a staged toggle");
  if (evaluated_) return staged_unrest_;
  staged_unrest_ = evaluate_pass(/*staged=*/true);
  evaluated_ = true;
  ++stats_.evaluations;
  return staged_unrest_;
}

template <typename Dist>
std::uint64_t SearchStateImpl<Dist>::unrest() {
  if (unrest_) return *unrest_;
  unrest_ = evaluate_pass(/*staged=*/false);
  return *unrest_;
}

template <typename Dist>
void SearchStateImpl<Dist>::append_toggle(Vertex u, Vertex v, bool add) {
  Toggle t;
  t.u = u;
  t.v = v;
  t.add = add;
  if (!add) t.before = std::make_shared<const CsrGraph>(csr_);
  log_.push_back(std::move(t));
  ++head_;
  while (log_.size() > kReplayLimit) {
    log_.erase(log_.begin());
    ++log_base_;
  }
}

template <typename Dist>
void SearchStateImpl<Dist>::commit() {
  BNCG_REQUIRE(staged_ && evaluated_, "commit requires an evaluated staged toggle");
  append_toggle(staged_u_, staged_v_, staged_add_);
  fcur_ = 1 - fcur_;
  // The evaluation parked every agent's proposal tables in the shadow set;
  // flipping makes them current. The matrices still catch up lazily through
  // the journal (table_version_ runs ahead of version_ until then).
  tcur_ = 1 - tcur_;
  std::fill(table_version_.begin(), table_version_.end(), head_);
  if (staged_add_) {
    graph_.add_edge(staged_u_, staged_v_);
  } else {
    graph_.remove_edge(staged_u_, staged_v_);
  }
  csr_.rebuild(graph_);
  unrest_ = staged_unrest_;
  staged_ = false;
  evaluated_ = false;
  ++stats_.commits;
}

template <typename Dist>
void SearchStateImpl<Dist>::apply_toggle_impl(Vertex u, Vertex v, bool add) {
  BNCG_REQUIRE(u != v && u < n_ && v < n_, "toggle endpoints must be distinct in-range vertices");
  staged_ = false;
  evaluated_ = false;
  const std::size_t shadow = 1 - fcur_;
  // The matrix updates run BEFORE any mutation, so a WidthSaturated thrown
  // here leaves graph_/csr_/journal untouched — the facade can replay the
  // same toggle on the promoted state.
  if (add) {
    update_full_matrix_addition(u, v, shadow, scratch_[0]);
  } else {
    update_full_matrix_removal(u, v, shadow, scratch_[0]);
  }
  refresh_shape(shadow);
  fcur_ = shadow;
  append_toggle(u, v, add);
  if (add) {
    graph_.add_edge(u, v);
  } else {
    graph_.remove_edge(u, v);
  }
  csr_.rebuild(graph_);
  unrest_.reset();
  merge_stats(scratch_[0]);
  ++stats_.commits;
}

template <typename Dist>
void SearchStateImpl<Dist>::apply_deletion(Vertex v, Vertex w) {
  apply_toggle_impl(v, w, /*add=*/false);
}

template <typename Dist>
void SearchStateImpl<Dist>::apply_toggle(Vertex u, Vertex v) {
  apply_toggle_impl(u, v, /*add=*/!graph_.has_edge(u, v));
}

template <typename Dist>
std::optional<Deviation> SearchStateImpl<Dist>::deviation_impl(Vertex a, bool include_deletions,
                                                               ScanMode mode) {
  BNCG_REQUIRE(a < n_, "vertex id out of range");
  ensure_slabs();
  Scratch& s = scratch_[0];
  ensure_agent_current(a, s);
  ensure_tables(a, s);
  proposal_neighbors(a, kNoVertex, kNoVertex, false, false, s.nbrs);
  load_tables(a, s);
  s.rowptr.resize(n_);
  {
    const Dist* rows = agent_rows(a);
    for (Vertex x = 0; x < n_; ++x) s.rowptr[x] = rows + static_cast<std::size_t>(x) * n_;
  }
  const std::uint64_t old_cost = agent_cost_from_full(fcur_, a);
  ScanResult r = scan_agent(a, old_cost, include_deletions, mode, s, model_ == UsageCost::Sum);
  merge_stats(s);
  return r.witness;
}

template <typename Dist>
std::optional<Deviation> SearchStateImpl<Dist>::best_deviation(Vertex a, bool include_deletions) {
  return deviation_impl(a, include_deletions, ScanMode::Best);
}

template <typename Dist>
std::optional<Deviation> SearchStateImpl<Dist>::first_deviation(Vertex a,
                                                                bool include_deletions) {
  return deviation_impl(a, include_deletions, ScanMode::First);
}

template <typename Dist>
bool SearchStateImpl<Dist>::certify_current() {
  if (unrest_) return *unrest_ == 0;
  for (Vertex a = 0; a < n_; ++a) {
    if (first_deviation(a, include_deletions_)) return false;
  }
  return true;
}

template <typename Dist>
void SearchStateImpl<Dist>::debug_scan_tables(Vertex a, std::vector<Vertex>& min1,
                                              std::vector<Vertex>& min2,
                                              std::vector<Vertex>& argmin,
                                              std::vector<std::uint32_t>& r1) {
  BNCG_REQUIRE(a < n_, "vertex id out of range");
  ensure_slabs();
  Scratch& s = scratch_[0];
  ensure_agent_current(a, s);
  ensure_tables(a, s);
  const Vertex n = n_;
  min1.resize(n);
  min2.resize(n);
  argmin.assign(table_argmin(a), table_argmin(a) + n);
  const Dist* m1 = table_min1(a);
  const Dist* m2 = table_min2(a);
  for (Vertex y = 0; y < n; ++y) {
    min1[y] = m1[y] >= kInf ? kInfDist : m1[y];
    min2[y] = m2[y] >= kInf ? kInfDist : m2[y];
  }
  if (model_ == UsageCost::Sum) {
    r1.assign(table_r1(a), table_r1(a) + n);
  } else {
    r1.clear();
  }
}

template class SearchStateImpl<std::uint8_t>;
template class SearchStateImpl<std::uint16_t>;

// ---------------------------------------------------------------- facade

SearchState::SearchState(const Graph& g, UsageCost model, bool include_deletions, bool parallel,
                         WidthPolicy width)
    : model_(model), include_deletions_(include_deletions), parallel_(parallel) {
  const Vertex n = g.num_vertices();
  BNCG_REQUIRE(n >= 1 && n <= kMaxFiniteFor<std::uint16_t> + 1,
               "SearchState requires 1 <= n <= 16382");
  bool try_u8 = width == WidthPolicy::ForceU8;
  if (width == WidthPolicy::Auto) {
    // One BFS screens out instances that certainly do not fit: ecc(0) lower
    // bounds the diameter, and disconnected graphs keep the conservative
    // wide layout (components unseen from vertex 0 stay unbounded). A graph
    // that passes the screen but saturates mid-construction still lands on
    // u16 through the catch below.
    BfsWorkspace ws;
    const BfsResult r = bfs(g, 0, ws);
    try_u8 = r.spans(n) && r.ecc <= kMaxFiniteFor<std::uint8_t>;
  }
  if (try_u8) {
    try {
      impl8_ = std::make_unique<SearchStateImpl<std::uint8_t>>(g, model, include_deletions,
                                                               parallel);
    } catch (const WidthSaturated&) {
      impl8_.reset();
    }
  }
  if (!impl8_) {
    impl16_ = std::make_unique<SearchStateImpl<std::uint16_t>>(g, model, include_deletions,
                                                               parallel);
    if (try_u8) {
      // The narrow attempt burned and taught us the width — record it like
      // a promotion so stats expose the cap crossing.
      SearchStats s = impl16_->stats();
      s.promotions += 1;
      impl16_->adopt_stats(s);
    }
  }
}

SearchState::~SearchState() = default;

void SearchState::promote() {
  SearchStats carried = impl8_->stats();
  carried.promotions += 1;
  const Graph g = impl8_->graph();
  impl8_.reset();
  impl16_ =
      std::make_unique<SearchStateImpl<std::uint16_t>>(g, model_, include_deletions_, parallel_);
  impl16_->adopt_stats(carried);
  // A toggle staged on the old width is re-staged here so the interrupted
  // proposal_unrest()/commit() sequence resumes exactly where it was; the
  // re-stage is bookkeeping, not a new proposal, so its count is undone.
  if (staged_) {
    (void)impl16_->propose_toggle(staged_u_, staged_v_);
    SearchStats restaged = impl16_->stats();
    restaged.proposals -= 1;
    impl16_->adopt_stats(restaged);
  }
}

template <typename F>
decltype(auto) SearchState::dispatch(F&& f) {
  if (impl8_) {
    try {
      return f(*impl8_);
    } catch (const WidthSaturated&) {
      promote();
    }
  }
  return f(*impl16_);
}

const Graph& SearchState::graph() const noexcept {
  return impl8_ ? impl8_->graph() : impl16_->graph();
}

Vertex SearchState::num_vertices() const noexcept {
  return impl8_ ? impl8_->num_vertices() : impl16_->num_vertices();
}

Vertex SearchState::diameter() const noexcept {
  return impl8_ ? impl8_->diameter() : impl16_->diameter();
}

bool SearchState::connected() const noexcept {
  return impl8_ ? impl8_->connected() : impl16_->connected();
}

DistWidth SearchState::width() const noexcept {
  return impl8_ ? DistWidth::U8 : DistWidth::U16;
}

const SearchStats& SearchState::stats() const noexcept {
  return impl8_ ? impl8_->stats() : impl16_->stats();
}

std::uint64_t SearchState::unrest() {
  return dispatch([](auto& s) { return s.unrest(); });
}

ToggleShape SearchState::propose_toggle(Vertex u, Vertex v) {
  // Cleared first so a promotion *inside* this call does not re-stage the
  // toggle ahead of the retry (the retry stages it itself).
  staged_ = false;
  const ToggleShape shape = dispatch([&](auto& s) { return s.propose_toggle(u, v); });
  staged_ = true;
  staged_u_ = u;
  staged_v_ = v;
  return shape;
}

std::uint64_t SearchState::proposal_unrest() {
  return dispatch([](auto& s) { return s.proposal_unrest(); });
}

void SearchState::commit() {
  dispatch([](auto& s) { s.commit(); });
  staged_ = false;
}

std::optional<Deviation> SearchState::best_deviation(Vertex a, bool include_deletions) {
  return dispatch([&](auto& s) { return s.best_deviation(a, include_deletions); });
}

std::optional<Deviation> SearchState::first_deviation(Vertex a, bool include_deletions) {
  return dispatch([&](auto& s) { return s.first_deviation(a, include_deletions); });
}

void SearchState::apply_swap(const EdgeSwap& swap) {
  staged_ = false;  // applying a move discards any staged proposal
  // Dispatched as two single toggles, not one impl-level apply_swap: each
  // toggle throws (if at all) BEFORE mutating, so a promotion between the
  // removal and the addition replays only the not-yet-applied half —
  // impl-level apply_swap would re-remove an already-removed edge on retry.
  dispatch([&](auto& s) { s.apply_deletion(swap.v, swap.remove_w); });
  dispatch([&](auto& s) { s.apply_toggle(swap.v, swap.add_w); });
}

void SearchState::apply_deletion(Vertex v, Vertex w) {
  staged_ = false;
  dispatch([&](auto& s) { s.apply_deletion(v, w); });
}

void SearchState::apply_toggle(Vertex u, Vertex v) {
  staged_ = false;
  dispatch([&](auto& s) { s.apply_toggle(u, v); });
}

bool SearchState::certify_current() {
  return dispatch([](auto& s) { return s.certify_current(); });
}

SearchState::ScanTables SearchState::debug_scan_tables(Vertex a) {
  ScanTables t;
  dispatch([&](auto& s) { s.debug_scan_tables(a, t.min1, t.min2, t.argmin, t.r1); });
  return t;
}

}  // namespace bncg

// The paper's proof infrastructure as executable, checkable statements.
//
// Each numbered lemma of the paper gets a direct implementation: either a
// predicate ("does this graph satisfy the lemma's conclusion?") or a
// constructive finder (Lemma 10 produces the cheap edge its proof promises).
// The test suite and bench_lemmas validate them across instance families,
// so the reproduction covers the *proofs'* machinery, not just the
// theorems' statements.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace bncg {

/// Lemma 2: in a max equilibrium, local diameters of any two nodes differ by
/// at most 1. This checks the conclusion on any graph.
[[nodiscard]] bool lemma2_balanced_eccentricities(const Graph& g);

/// Lemma 3: if v is a cut vertex of a max equilibrium, only one component of
/// G − v contains a vertex at distance > 1 from v. Checks the conclusion for
/// every cut vertex of g.
[[nodiscard]] bool lemma3_all_cut_vertices(const Graph& g);

/// Lemma 6: a vertex of local diameter 2 cannot improve its distance sum by
/// any swap. Validated form: for every vertex of g with eccentricity ≤ 2,
/// no improving sum swap exists. (True unconditionally, not just in
/// equilibria — this checks our engine against the lemma.)
[[nodiscard]] bool lemma6_diameter2_vertices_are_stable(const Graph& g);

/// Lemma 7 bound: for a vertex v of local diameter 3, adding an edge to a
/// vertex w at distance r decreases v's distance sum by at most
/// (r − 1) + #{neighbors of w at distance 3 from v}. Returns true when the
/// bound holds for every (v, w) pair with ecc(v) = 3.
[[nodiscard]] bool lemma7_gain_bound(const Graph& g);

/// Lemma 8: in a girth-4 graph, swapping vw → vw′ increases d(v, w) by ≥ 2,
/// unless w′ ∈ N(w) where the guarantee is ≥ 1. Returns true when every
/// legal swap of g satisfies the bound. Precondition: girth(g) ≥ 4.
[[nodiscard]] bool lemma8_distance_penalty(const Graph& g);

/// Lemma 10's constructive content: either the graph has diameter ≤ 2·lg n,
/// or for the given root u there is an edge xy with d(u, x) ≤ lg n whose
/// removal increases the sum of distances from x by at most 2n(1 + lg n).
struct CheapEdge {
  Vertex x = 0;
  Vertex y = 0;
  std::uint64_t removal_cost = 0;  ///< increase of x's distance sum
};
struct Lemma10Result {
  bool diameter_branch = false;          ///< diameter ≤ 2 lg n held
  std::optional<CheapEdge> cheap_edge;   ///< otherwise, the promised edge
};

/// Evaluates Lemma 10 for a sum-equilibrium graph and root u. For graphs
/// that are *not* equilibria the cheap edge may not exist; the function then
/// reports neither branch (both fields empty) — callers use it only on
/// certified equilibria, as the paper does.
[[nodiscard]] Lemma10Result lemma10_cheap_edge(const Graph& g, Vertex u);

/// Corollary 11: in a sum equilibrium, adding any edge uv decreases the sum
/// of distances from u by at most 5·n·lg n. Checks the conclusion for every
/// non-adjacent pair of g.
[[nodiscard]] bool corollary11_insertion_gain_bound(const Graph& g);

}  // namespace bncg

// bncg — Basic Network Creation Games (SPAA 2010 reproduction).
//
// Umbrella header: includes the entire public API. Fine for applications;
// library-internal code includes the specific headers it needs.
//
//   #include "bncg.hpp"
//   using namespace bncg;
//
// Layers (see DESIGN.md for the full inventory):
//   util/  — RNG, tables, timers, preconditions
//   graph/ — Graph, BFS, APSP, metrics, connectivity, powers, uniformity,
//            subgraphs, io, isomorphism
//   gen/   — classic families, the paper's constructions, Cayley graphs,
//            projective planes, random families, tree enumeration
//   core/  — swaps, usage costs, certifiers, dynamics, tree fast path,
//            k-stability, search, lemmas, the α-game baseline, PoA,
//            and the Instance/RunConfig facade (start there)
#pragma once

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#include "graph/graph.hpp"
#include "graph/bfs.hpp"
#include "graph/csr.hpp"
#include "graph/dist_width.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/row_cache.hpp"
#include "graph/apsp.hpp"
#include "graph/metrics.hpp"
#include "graph/connectivity.hpp"
#include "graph/subgraph.hpp"
#include "graph/power.hpp"
#include "graph/distance_uniformity.hpp"
#include "graph/io.hpp"
#include "graph/isomorphism.hpp"

#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/cayley.hpp"
#include "gen/projective.hpp"
#include "gen/random.hpp"
#include "gen/trees_enum.hpp"

#include "core/swap.hpp"
#include "core/usage_cost.hpp"
#include "core/dist_provider.hpp"
#include "core/equilibrium.hpp"
#include "core/swap_engine.hpp"
#include "core/instance.hpp"
#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/search_state.hpp"
#include "core/dynamics.hpp"
#include "core/tree_game.hpp"
#include "core/kstability.hpp"
#include "core/search.hpp"
#include "core/lemmas.hpp"
#include "core/classic_game.hpp"
#include "core/poa.hpp"

// Reproduces Theorem 1 (§2.1): a sum-equilibrium tree has diameter at most 2
// — the star is the *only* equilibrium tree.
//
// Protocol: (a) certify stars directly across sizes; (b) run sum best-
// response dynamics from uniform random trees and report the diameter of the
// reached equilibrium (always ≤ 2, i.e. the star, since swap dynamics
// preserve tree-ness); (c) adversarial sweep: certify that *no* random tree
// of diameter ≥ 3 passes the equilibrium test.
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/tree_game.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "gen/trees_enum.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 1 [SPAA'10 §2.1]: sum-equilibrium trees have diameter <= 2 (stars)\n";
  Xoshiro256ss rng(0xA101);
  bool all_ok = true;

  print_banner(std::cout, "(a) stars certify as sum equilibria");
  {
    Table t({"n", "is_sum_equilibrium", "diameter", "verdict"});
    for (const Vertex n : {4u, 8u, 16u, 32u, 64u}) {
      const Graph g = star(n);
      const bool eq = is_sum_equilibrium(g);
      const Vertex d = diameter(g);
      all_ok = all_ok && eq && d <= 2;
      t.add_row({fmt(n), eq ? "yes" : "no", fmt(d), verdict(eq && d <= 2)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) sum dynamics on random trees converge to stars");
  {
    Table t({"n", "trials", "converged", "max_final_diam", "avg_moves", "verdict"});
    for (const Vertex n : {8u, 16u, 32u, 64u}) {
      const int trials = 10;
      int converged = 0;
      Vertex max_diam = 0;
      std::uint64_t total_moves = 0;
      for (int trial = 0; trial < trials; ++trial) {
        DynamicsConfig config;
        config.cost = UsageCost::Sum;
        config.max_moves = 200'000;
        config.seed = rng();
        const DynamicsResult r = run_dynamics(random_tree(n, rng), config);
        converged += r.converged;
        total_moves += r.moves;
        if (r.converged) max_diam = std::max(max_diam, diameter(r.graph));
      }
      const bool ok = converged == trials && max_diam <= 2;
      all_ok = all_ok && ok;
      t.add_row({fmt(n), fmt(trials), fmt(converged), fmt(max_diam),
                 fmt(static_cast<double>(total_moves) / trials, 1), verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) no tree of diameter >= 3 certifies as a sum equilibrium");
  {
    Table t({"n", "trees_tested", "diam>=3_tested", "false_equilibria", "verdict"});
    for (const Vertex n : {6u, 10u, 14u, 20u, 28u}) {
      const int trials = 30;
      int deep = 0, false_eq = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const Graph t_graph = random_tree(n, rng);
        if (diameter(t_graph) < 3) continue;
        ++deep;
        if (is_sum_equilibrium(t_graph)) ++false_eq;
      }
      all_ok = all_ok && false_eq == 0;
      t.add_row({fmt(n), fmt(trials), fmt(deep), fmt(false_eq), verdict(false_eq == 0)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c') Figure 1 accounting: the proof's subtree inequalities, live");
  {
    // For diameter >= 3 trees, the proof sums s_b+s_w <= s_a and
    // s_v+s_a <= s_b into the contradiction s_v+s_w <= 0; equivalently, at
    // least one endpoint's swap must win. Print the witness on samples.
    Table t({"n", "path v-a-b-w", "s_v", "s_a", "s_b", "s_w", "v swap wins", "w swap wins",
             "verdict"});
    for (int trial = 0; trial < 6; ++trial) {
      const Graph tree = random_tree(12, rng);
      const auto w = theorem1_witness(tree);
      if (!w) continue;
      const bool ok = w->v_swap_wins || w->w_swap_wins;
      all_ok = all_ok && ok;
      t.add_row({fmt(tree.num_vertices()),
                 fmt(w->v) + "-" + fmt(w->a) + "-" + fmt(w->b) + "-" + fmt(w->w), fmt(w->sv),
                 fmt(w->sa), fmt(w->sb), fmt(w->sw), w->v_swap_wins ? "yes" : "no",
                 w->w_swap_wins ? "yes" : "no", verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout,
               "(d) COMPLETE verification: all n^(n-2) labelled trees, n <= 7");
  {
    // Not sampling: every labelled tree is certified. Theorem 1 predicts the
    // equilibria are exactly the n stars (one per choice of center).
    Table t({"n", "labelled trees", "sum equilibria found", "all are stars", "expected count",
             "verdict"});
    for (const Vertex n : {3u, 4u, 5u, 6u, 7u}) {
      std::uint64_t equilibria = 0;
      bool all_stars = true;
      for_each_labelled_tree(n, [&](const Graph& tree) {
        if (is_sum_equilibrium(tree)) {
          ++equilibria;
          all_stars = all_stars && diameter(tree) <= 2;
        }
        return true;
      });
      // Exactly n stars exist for n >= 3 (choice of the center vertex).
      const std::uint64_t expected = n;
      const bool ok = all_stars && equilibria == expected;
      all_ok = all_ok && ok;
      t.add_row({fmt(n), fmt(num_labelled_trees(n)), fmt(equilibria),
                 all_stars ? "yes" : "NO", fmt(expected), verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "Exhaustive over " << num_labelled_trees(7)
              << " trees at n=7: the sum-equilibrium trees are exactly the stars.\n";
  }

  std::cout << "\nTheorem 1 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Reproduces Theorem 15 (§5): an ε-distance-uniform Cayley graph of an
// Abelian group with ε < 1/4 has diameter O(lg n / lg(1/ε)).
//
// Protocol: sweep Abelian Cayley families (circulants with varying chord
// structure, multi-factor groups, the paper's own Fig.-4-as-Cayley example),
// measure the best (r, ε) pair and the diameter, and check the theorem's
// bound with an explicit constant. Also reproduces the proof's growth
// mechanism (Plünnecke-style ball growth |qS| ≤ |pS|^{q/p}).
#include <cmath>
#include <iostream>

#include "gen/cayley.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "graph/distance_uniformity.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 15 [SPAA'10 §5]: eps-distance-uniform Abelian Cayley graphs have "
               "diameter O(lg n / lg(1/eps))\n";
  bool all_ok = true;

  print_banner(std::cout, "(a) bound check across Abelian Cayley families (constant C = 8)");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> family;
    family.push_back({"K32 = Cay(Z32, all)", complete(32)});
    family.push_back({"circulant(64;1,2,3,4,5,6,7,8)", circulant(64, {1, 2, 3, 4, 5, 6, 7, 8})});
    family.push_back({"circulant(128;1..12)", circulant(128, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})});
    family.push_back({"circulant(100;1,10,25)", circulant(100, {1, 10, 25})});
    family.push_back({"Cay(Z8xZ8, unit steps)",
                      cayley_graph_from_tuples(AbelianGroup({8, 8}),
                                               {{1, 0}, {7, 0}, {0, 1}, {0, 7}})});
    family.push_back({"Cay(Z16xZ4, mixed)",
                      cayley_graph_from_tuples(AbelianGroup({16, 4}),
                                               {{1, 0}, {15, 0}, {0, 1}, {0, 3}, {8, 2}})});
    family.push_back({"hypercube(7)", hypercube_cayley(7)});
    family.push_back({"fig4 torus k=8 (Cayley form)", even_sum_subgroup_cayley(8)});

    Table t({"graph", "n", "diam", "eps", "r", "bound 8*lg n/lg(1/eps)", "in_regime", "verdict"});
    for (const auto& [name, g] : family) {
      const DistanceMatrix dm(g);
      const UniformityResult u = best_uniformity(dm);
      const Vertex d = distance_stats(dm).diameter;
      const double lg_n = std::log2(static_cast<double>(g.num_vertices()));
      const bool in_regime = u.epsilon < 0.25 && u.epsilon > 0.0;
      double bound = 0.0;
      bool ok = true;
      if (in_regime) {
        bound = 8.0 * lg_n / std::log2(1.0 / u.epsilon);
        ok = static_cast<double>(d) <= std::max(bound, 2.0);
      }
      all_ok = all_ok && ok;
      t.add_row({name, fmt(g.num_vertices()), fmt(d), fmt(u.epsilon, 3), fmt(u.radius),
                 in_regime ? fmt(bound, 1) : "-", in_regime ? "yes" : "no", verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "Instances outside the eps < 1/4 regime (e.g. the Fig. 4 torus, whose\n"
                 "spheres are thin) are reported but not gated — the theorem's hypothesis\n"
                 "fails there, which is exactly why Theorem 12's diameter can be sqrt(n).\n";
  }

  print_banner(std::cout, "(b) proof mechanism: multiplicative ball growth |B_{r+1}| <= |B_r|^2");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> family;
    family.push_back({"circulant(81;1,9)", circulant(81, {1, 9})});
    family.push_back({"circulant(121;1,11)", circulant(121, {1, 11})});
    family.push_back({"Cay(Z27xZ3)", cayley_graph_from_tuples(AbelianGroup({27, 3}),
                                                              {{1, 0}, {26, 0}, {0, 1}, {0, 2}})});
    Table t({"graph", "radii checked", "violations", "verdict"});
    for (const auto& [name, g] : family) {
      const DistanceMatrix dm(g);
      const auto sizes = sphere_sizes(dm, 0);
      std::uint64_t ball = 0;
      std::vector<std::uint64_t> balls;
      for (const Vertex s : sizes) {
        ball += s;
        balls.push_back(ball);
      }
      int violations = 0;
      for (std::size_t r = 1; r + 1 < balls.size(); ++r) {
        if (balls[r + 1] > balls[r] * balls[r]) ++violations;
      }
      all_ok = all_ok && violations == 0;
      t.add_row({name, fmt(balls.size()), fmt(violations), verdict(violations == 0)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) contrast: the eps -> 0 limit forces diameter collapse");
  {
    // As chord sets densify, eps at the best radius shrinks and the diameter
    // collapses toward the bound — the trade-off curve of the theorem.
    Table t({"chords per side", "n", "diam", "eps", "bound", "verdict"});
    for (const Vertex chords : {2u, 4u, 8u, 16u}) {
      std::vector<Vertex> offsets;
      for (Vertex c = 1; c <= chords; ++c) offsets.push_back(c);
      const Graph g = circulant(128, offsets);
      const DistanceMatrix dm(g);
      const UniformityResult u = best_uniformity(dm);
      const Vertex d = distance_stats(dm).diameter;
      bool ok = true;
      double bound = 0.0;
      if (u.epsilon < 0.25 && u.epsilon > 0.0) {
        bound = 8.0 * std::log2(128.0) / std::log2(1.0 / u.epsilon);
        ok = static_cast<double>(d) <= std::max(bound, 2.0);
      }
      all_ok = all_ok && ok;
      t.add_row({fmt(chords), "128", fmt(d), fmt(u.epsilon, 3),
                 bound > 0 ? fmt(bound, 1) : "-", verdict(ok)});
    }
    t.print(std::cout);
  }

  std::cout << "\nTheorem 15 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

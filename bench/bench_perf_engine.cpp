// Engine microbenchmarks (google-benchmark): BFS, APSP, swap evaluation,
// certifier and dynamics throughput. These are the inner loops whose cost
// model DESIGN.md's complexity notes rely on.
#include <benchmark/benchmark.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/apsp.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace bncg;

Graph test_graph(Vertex n) {
  Xoshiro256ss rng(0xBEEF ^ n);
  return random_connected_gnm(n, 2 * n, rng);
}

void BM_BfsSingleSource(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  BfsWorkspace ws;
  Vertex src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, src, ws));
    src = (src + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_BfsSingleSource)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Apsp(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix(g));
  }
}
BENCHMARK(BM_Apsp)->Arg(64)->Arg(256)->Arg(1024);

void BM_Diameter(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(diameter(g));
  }
}
BENCHMARK(BM_Diameter)->Arg(64)->Arg(256)->Arg(1024);

void BM_SwapGainEvaluation(benchmark::State& state) {
  // Cost of one tentative swap: scoped apply + BFS + revert.
  Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  BfsWorkspace ws;
  const Vertex v = 0;
  const Vertex w = g.neighbors(v)[0];
  Vertex w2 = 0;
  for (auto _ : state) {
    do {
      w2 = (w2 + 1) % g.num_vertices();
    } while (w2 == v || w2 == w || g.has_edge(v, w2));
    const ScopedSwap swap(g, {v, w, w2});
    benchmark::DoNotOptimize(vertex_cost(g, v, UsageCost::Sum, ws));
  }
}
BENCHMARK(BM_SwapGainEvaluation)->Arg(64)->Arg(256)->Arg(1024);

void BM_CertifySumEquilibrium(benchmark::State& state) {
  const Graph g = star(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(certify_sum_equilibrium(g));
  }
}
BENCHMARK(BM_CertifySumEquilibrium)->Arg(16)->Arg(32)->Arg(64);

void BM_CertifyMaxEquilibriumTorus(benchmark::State& state) {
  const DiagonalTorus torus = rotated_torus(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(certify_max_equilibrium(torus.graph()));
  }
}
BENCHMARK(BM_CertifyMaxEquilibriumTorus)->Arg(3)->Arg(4)->Arg(5);

void BM_DynamicsToEquilibrium(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Xoshiro256ss rng(0xD15C0);
  for (auto _ : state) {
    state.PauseTiming();
    const Graph start = random_connected_gnm(n, 2 * n, rng);
    state.ResumeTiming();
    DynamicsConfig config;
    config.max_moves = 1'000'000;
    benchmark::DoNotOptimize(run_dynamics(start, config));
  }
}
BENCHMARK(BM_DynamicsToEquilibrium)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_BatchApsp(benchmark::State& state) {
  // The engine's inner primitive: all distance rows of an edge-masked CSR
  // snapshot via 64-source bit-parallel sweeps.
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  const CsrGraph csr(g);
  const Vertex n = csr.num_vertices();
  BatchBfsWorkspace ws;
  std::vector<std::uint16_t> rows(static_cast<std::size_t>(n) * n);
  const Vertex v = 0;
  const Vertex w = csr.neighbors(v)[0];
  for (auto _ : state) {
    csr_apsp(csr, MaskedEdge{v, w}, rows.data(), ws);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() * n);  // BFS-equivalents
}
BENCHMARK(BM_BatchApsp)->Arg(64)->Arg(256)->Arg(1024);

// Engine-vs-naive certification on the same random G(n, 2n) instances. The
// counters report tentative swaps evaluated per second — the system's
// headline throughput metric (see BENCH_engine.json / run_bench.sh).

void BM_CertifySumEngine(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  const SwapEngine engine(g);
  std::uint64_t moves = 0;
  for (auto _ : state) {
    const auto cert = engine.certify(UsageCost::Sum, /*include_deletions=*/false);
    moves = cert.moves_checked;
    benchmark::DoNotOptimize(cert);
  }
  state.SetItemsProcessed(state.iterations() * moves);
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations() * moves),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CertifySumEngine)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_CertifySumNaive(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  std::uint64_t moves = 0;
  for (auto _ : state) {
    const auto cert = naive::certify_sum_equilibrium(g);
    moves = cert.moves_checked;
    benchmark::DoNotOptimize(cert);
  }
  state.SetItemsProcessed(state.iterations() * moves);
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations() * moves),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CertifySumNaive)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_CertifyMaxEngine(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  const SwapEngine engine(g);
  std::uint64_t moves = 0;
  for (auto _ : state) {
    const auto cert = engine.certify(UsageCost::Max, /*include_deletions=*/true);
    moves = cert.moves_checked;
    benchmark::DoNotOptimize(cert);
  }
  state.SetItemsProcessed(state.iterations() * moves);
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations() * moves),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CertifyMaxEngine)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_CertifyMaxNaive(benchmark::State& state) {
  const Graph g = test_graph(static_cast<Vertex>(state.range(0)));
  std::uint64_t moves = 0;
  for (auto _ : state) {
    const auto cert = naive::certify_max_equilibrium(g);
    moves = cert.moves_checked;
    benchmark::DoNotOptimize(cert);
  }
  state.SetItemsProcessed(state.iterations() * moves);
  state.counters["swaps_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations() * moves),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CertifyMaxNaive)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_InsertionStability(benchmark::State& state) {
  const DiagonalTorus torus = rotated_torus(static_cast<Vertex>(state.range(0)));
  const DistanceMatrix dm(torus.graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(insertion_stability_at(dm, 0, 1));
  }
}
BENCHMARK(BM_InsertionStability)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

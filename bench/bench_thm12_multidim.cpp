// Reproduces the d-dimensional generalization of Theorem 12 (§4): the
// diagonal torus in d dimensions has diameter Θ(n^{1/d}), is deletion-
// critical, and is stable under up to d−1 simultaneous insertions — the
// Ω(n^{1/(k+1)}) trade-off between equilibrium diameter and agents'
// computational power (k simultaneous edge changes).
#include <cmath>
#include <iostream>

#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "gen/paper.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 12, d-dimensional form [SPAA'10 §4]: diameter Theta(n^{1/d}), "
               "stable under d-1 insertions\n";
  bool all_ok = true;

  print_banner(std::cout, "(a) diameter scaling: k = Theta(n^{1/d})");
  {
    Table t({"d", "k", "n", "diameter", "n^{1/d}", "verdict"});
    struct Case {
      Vertex d, k;
    };
    const Case cases[] = {{2, 4}, {2, 8}, {2, 12}, {3, 3}, {3, 5}, {3, 7}, {4, 3}, {4, 4}, {5, 3}};
    for (const auto& [d, k] : cases) {
      const DiagonalTorus torus(d, k);
      const Vertex diam = diameter(torus.graph());
      const double root = std::pow(static_cast<double>(torus.num_vertices()), 1.0 / d);
      const bool ok = diam == k;
      all_ok = all_ok && ok;
      t.add_row({fmt(d), fmt(k), fmt(torus.num_vertices()), fmt(diam), fmt(root, 2),
                 verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "diameter == k == (n/2)^{1/d}: the Theta(n^{1/d}) row of the trade-off.\n";
  }

  print_banner(std::cout,
               "(b) k-insertion stability at a representative agent (vertex-transitive)");
  {
    // The theorem guarantees stability under d−1 insertions (gated below);
    // whether exactly d insertions break it is not claimed by the paper, so
    // the measured tolerance column is informational.
    Table t({"d", "k", "n", "stable@d-1 (paper)", "measured tolerance", "verdict"});
    struct Case {
      Vertex d, k;
    };
    const Case cases[] = {{2, 4}, {2, 6}, {2, 8}, {3, 3}, {3, 4}, {4, 3}};
    for (const auto& [d, k] : cases) {
      Timer timer;
      const DiagonalTorus torus(d, k);
      const DistanceMatrix dm(torus.graph());
      const bool stable_below = insertion_stability_at(dm, 0, d - 1).stable;
      const Vertex tolerated = max_tolerated_insertions(dm, 0, d + 1);
      const bool ok = stable_below && tolerated >= d - 1;
      all_ok = all_ok && ok;
      t.add_row({fmt(d), fmt(k), fmt(torus.num_vertices()), stable_below ? "yes" : "no",
                 fmt(tolerated), verdict(ok)});
      (void)timer;
    }
    t.print(std::cout);
  }

  print_banner(std::cout,
               "(b') swap form of the statement: stable under d-1 simultaneous SWAPS");
  {
    // Theorem 12's wording is "insertion (or swapping) of up to d−1 edges";
    // swaps delete incident edges too, so this is checked exactly and
    // separately (deletion subsets × set cover in each deleted graph).
    Table t({"d", "k", "n", "swap-stable@d-1", "verdict"});
    struct Case {
      Vertex d, k;
    };
    const Case cases[] = {{2, 4}, {2, 6}, {3, 3}, {4, 2}};
    for (const auto& [d, k] : cases) {
      const DiagonalTorus torus(d, k);
      const bool stable = swap_stability_at(torus.graph(), 0, d - 1).stable;
      all_ok = all_ok && stable;
      t.add_row({fmt(d), fmt(k), fmt(torus.num_vertices()), stable ? "yes" : "NO",
                 verdict(stable)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) deletion-criticality across dimensions");
  {
    Table t({"d", "k", "n", "deletion_critical", "verdict"});
    struct Case {
      Vertex d, k;
    };
    const Case cases[] = {{2, 4}, {3, 3}, {4, 2}};
    for (const auto& [d, k] : cases) {
      const DiagonalTorus torus(d, k);
      const bool crit = is_deletion_critical(torus.graph());
      all_ok = all_ok && crit;
      t.add_row({fmt(d), fmt(k), fmt(torus.num_vertices()), crit ? "yes" : "no", verdict(crit)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(d) the trade-off read as Omega(n^{1/(k+1)})");
  {
    // Fix the tolerated insertion count kk = d−1; the construction then has
    // diameter ~ (n/2)^{1/(kk+1)} — print the implied exponent.
    Table t({"tolerated k", "d=k+1", "n", "diameter", "implied exponent lg(diam)/lg(n)"});
    struct Case {
      Vertex d, k;
    };
    const Case cases[] = {{2, 8}, {3, 5}, {4, 3}};
    for (const auto& [d, k] : cases) {
      const DiagonalTorus torus(d, k);
      const Vertex diam = diameter(torus.graph());
      const double exponent = std::log2(static_cast<double>(diam)) /
                              std::log2(static_cast<double>(torus.num_vertices()));
      t.add_row({fmt(d - 1), fmt(d), fmt(torus.num_vertices()), fmt(diam), fmt(exponent, 3)});
    }
    t.print(std::cout);
    std::cout << "exponent tracks 1/(k+1): 0.5, 0.33, 0.25 as k = 1, 2, 3.\n";
  }

  std::cout << "\nTheorem 12 (d-dim) overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Ablation study of the dynamics engine's design choices (DESIGN.md §3.4):
//
//  (a) scheduler (round-robin / random order / greedy-global) × policy
//      (first- vs best-improvement): moves-to-convergence and equilibrium
//      quality (diameter, cost ratio) on a fixed instance set;
//  (b) the specialized O(n) tree engine vs the generic BFS engine on trees:
//      same fixed points, orders-of-magnitude throughput gap;
//  (c) max-model neutral deletions on vs off: effect on reaching genuine
//      max equilibria (the deletion clause) vs mere swap-stability.
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "core/tree_game.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

int main() {
  std::cout << "Ablation: dynamics engine design choices\n";
  bool all_ok = true;

  print_banner(std::cout, "(a) scheduler x policy (sum model, gnm(48,96), 3 seeds each)");
  {
    struct Cell {
      Scheduler scheduler;
      MovePolicy policy;
      const char* name;
    };
    const Cell cells[] = {
        {Scheduler::RoundRobin, MovePolicy::FirstImprovement, "round-robin/first"},
        {Scheduler::RoundRobin, MovePolicy::BestImprovement, "round-robin/best"},
        {Scheduler::RandomOrder, MovePolicy::FirstImprovement, "random/first"},
        {Scheduler::RandomOrder, MovePolicy::BestImprovement, "random/best"},
        {Scheduler::GreedyGlobal, MovePolicy::BestImprovement, "greedy-global/best"},
    };
    Table t({"config", "converged", "avg moves", "avg passes", "worst diam", "avg cost ratio",
             "avg ms", "verdict"});
    for (const auto& cell : cells) {
      Xoshiro256ss rng(0xAB1A);  // same instances for every cell
      int converged = 0;
      std::uint64_t moves = 0, passes = 0;
      Vertex worst_diam = 0;
      double ratio = 0.0, ms = 0.0;
      const int seeds = 3;
      for (int seed = 0; seed < seeds; ++seed) {
        const Graph start = random_connected_gnm(48, 96, rng);
        DynamicsConfig config;
        config.scheduler = cell.scheduler;
        config.policy = cell.policy;
        config.max_moves = 400'000;
        config.seed = 1000 + seed;
        Timer timer;
        const DynamicsResult r = run_dynamics(start, config);
        ms += timer.millis();
        converged += r.converged;
        moves += r.moves;
        passes += r.passes;
        if (r.converged) {
          worst_diam = std::max(worst_diam, diameter(r.graph));
          ratio += social_cost_ratio(r.graph, UsageCost::Sum);
        }
      }
      const bool ok = converged == seeds;
      all_ok = all_ok && ok;
      t.add_row({cell.name, fmt(converged) + "/" + fmt(seeds),
                 fmt(static_cast<double>(moves) / seeds, 1),
                 fmt(static_cast<double>(passes) / seeds, 1), fmt(worst_diam),
                 fmt(ratio / std::max(converged, 1), 3), fmt(ms / seeds, 1), verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "All configurations land on certified equilibria of the same quality;\n"
                 "the scheduler mainly shifts moves-vs-passes, a robustness result for\n"
                 "the paper's 'any improving swap' model.\n";
  }

  print_banner(std::cout, "(b) specialized tree engine vs generic BFS engine (sum model)");
  {
    Table t({"n", "generic ms", "tree-engine ms", "speedup", "both reach stars", "verdict"});
    for (const Vertex n : {32u, 64u, 128u, 256u}) {
      Xoshiro256ss rng(0xAB1B ^ n);
      const Graph start = random_tree(n, rng);
      Timer generic_timer;
      DynamicsConfig config;
      config.max_moves = 1'000'000;
      const DynamicsResult generic = run_dynamics(start, config);
      const double generic_ms = generic_timer.millis();
      Timer tree_timer;
      const TreeDynamicsResult fast = run_tree_dynamics(start);
      const double tree_ms = tree_timer.millis();
      const bool stars = generic.converged && fast.converged &&
                         diameter(generic.graph) <= 2 && diameter(fast.tree) <= 2;
      all_ok = all_ok && stars;
      t.add_row({fmt(n), fmt(generic_ms, 2), fmt(tree_ms, 2),
                 fmt(generic_ms / std::max(tree_ms, 1e-6), 1) + "x", stars ? "yes" : "no",
                 verdict(stars)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) max model: neutral deletions on vs off (C_10 + 2 chords)");
  {
    Graph start = cycle(10);
    start.add_edge(0, 2);
    start.add_edge(5, 7);
    Table t({"neutral deletions", "converged", "final m", "swap-stable", "max equilibrium",
             "verdict"});
    for (const bool neutral : {false, true}) {
      DynamicsConfig config;
      config.cost = UsageCost::Max;
      config.allow_neutral_deletions = neutral;
      config.max_moves = 50'000;
      const DynamicsResult r = run_dynamics(start, config);
      // Swap-stability holds either way; the full max-equilibrium deletion
      // clause is only reachable when neutral deletions may prune chords.
      bool swap_stable = true;
      BfsWorkspace ws;
      for (Vertex v = 0; v < r.graph.num_vertices(); ++v) {
        swap_stable =
            swap_stable && !first_max_deviation(r.graph, v, ws, /*include_deletions=*/false);
      }
      const bool full_eq = is_max_equilibrium(r.graph);
      const bool ok = r.converged ? (neutral ? full_eq : swap_stable) : false;
      all_ok = all_ok && ok;
      t.add_row({neutral ? "on" : "off", r.converged ? "yes" : "no", fmt(r.graph.num_edges()),
                 swap_stable ? "yes" : "no", full_eq ? "yes" : "no", verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "Without the deletion clause, dynamics stop at swap-stable states that\n"
                 "still carry removable chords; the clause is what drives toward the\n"
                 "deletion-critical equilibria of Section 4.\n";
  }

  std::cout << "\nAblation overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Reproduces Theorem 4 + Figure 2 (§2.2): max-equilibrium trees have
// diameter at most 3, and the diameter-3 double-stars (>= 2 leaves per root)
// realize the bound. Also checks Lemma 2 (local diameters differ by <= 1 in
// max equilibria) across every certified equilibrium encountered.
#include <algorithm>
#include <iostream>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "gen/trees_enum.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

using namespace bncg;

namespace {

bool lemma2_holds(const Graph& g) {
  const auto ecc = eccentricities(g);
  const auto [lo, hi] = std::minmax_element(ecc.begin(), ecc.end());
  return *hi - *lo <= 1;
}

}  // namespace

int main() {
  std::cout << "Theorem 4 + Figure 2 [SPAA'10 §2.2]: max-equilibrium trees have diameter <= 3\n";
  Xoshiro256ss rng(0xA104);
  bool all_ok = true;

  print_banner(std::cout, "(a) Figure 2 double-stars: equilibrium iff >= 2 leaves per root");
  {
    Table t({"left_leaves", "right_leaves", "diameter", "max_equilibrium", "expected", "verdict"});
    for (Vertex l = 1; l <= 4; ++l) {
      for (Vertex r = 1; r <= 4; ++r) {
        const Graph g = double_star(l, r);
        const bool eq = is_max_equilibrium(g);
        const bool expected = l >= 2 && r >= 2;
        const bool ok = eq == expected;
        all_ok = all_ok && ok;
        t.add_row({fmt(l), fmt(r), fmt(diameter(g)), eq ? "yes" : "no",
                   expected ? "yes" : "no", verdict(ok)});
      }
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) no tree of diameter >= 4 certifies as a max equilibrium");
  {
    Table t({"n", "trees_tested", "diam>=4_tested", "false_equilibria", "verdict"});
    for (const Vertex n : {8u, 12u, 16u, 24u}) {
      const int trials = 30;
      int deep = 0, false_eq = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const Graph t_graph = random_tree(n, rng);
        if (diameter(t_graph) < 4) continue;
        ++deep;
        if (is_max_equilibrium(t_graph)) ++false_eq;
      }
      all_ok = all_ok && false_eq == 0;
      t.add_row({fmt(n), fmt(trials), fmt(deep), fmt(false_eq), verdict(false_eq == 0)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) Lemma 2: local diameters differ by <= 1 in certified max equilibria");
  {
    Table t({"instance", "n", "ecc_spread<=1", "verdict"});
    struct Named {
      const char* name;
      Graph g;
    };
    std::vector<Named> instances;
    instances.push_back({"star(16)", star(16)});
    instances.push_back({"double_star(2,2)", double_star(2, 2)});
    instances.push_back({"double_star(5,3)", double_star(5, 3)});
    instances.push_back({"complete(8)", complete(8)});
    instances.push_back({"cycle(5)", cycle(5)});
    for (const auto& [name, g] : instances) {
      const bool eq = is_max_equilibrium(g);
      const bool ok = !eq || lemma2_holds(g);
      all_ok = all_ok && ok && eq;
      t.add_row({name, fmt(g.num_vertices()), lemma2_holds(g) ? "yes" : "no", verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(d) diameter-3 is achievable, diameter-2 stars also certify");
  {
    Table t({"family", "diameter", "max_equilibrium", "verdict"});
    const Graph ds = double_star(3, 3);
    const Graph s = star(10);
    all_ok = all_ok && diameter(ds) == 3 && is_max_equilibrium(ds);
    all_ok = all_ok && diameter(s) == 2 && is_max_equilibrium(s);
    t.add_row({"double_star(3,3)", fmt(diameter(ds)),
               is_max_equilibrium(ds) ? "yes" : "no",
               verdict(diameter(ds) == 3 && is_max_equilibrium(ds))});
    t.add_row({"star(10)", fmt(diameter(s)), is_max_equilibrium(s) ? "yes" : "no",
               verdict(diameter(s) == 2 && is_max_equilibrium(s))});
    t.print(std::cout);
  }

  print_banner(std::cout,
               "(e) COMPLETE verification: all n^(n-2) labelled trees, n <= 7");
  {
    // Theorem 4 + the §2.2 classification: the max-equilibrium trees are
    // exactly the stars and the double-stars with >= 2 leaves per root.
    Table t({"n", "labelled trees", "max equilibria", "diam<=3 all", "stars", "double-stars",
             "verdict"});
    for (const Vertex n : {3u, 4u, 5u, 6u, 7u}) {
      std::uint64_t equilibria = 0, stars = 0, double_stars = 0;
      bool diam_ok = true;
      for_each_labelled_tree(n, [&](const Graph& tree) {
        if (!is_max_equilibrium(tree)) return true;
        ++equilibria;
        const Vertex d = diameter(tree);
        diam_ok = diam_ok && d <= 3;
        if (d <= 2) {
          ++stars;
        } else if (d == 3) {
          ++double_stars;
        }
        return true;
      });
      const bool ok = diam_ok && equilibria == stars + double_stars;
      all_ok = all_ok && ok;
      t.add_row({fmt(n), fmt(num_labelled_trees(n)), fmt(equilibria), diam_ok ? "yes" : "NO",
                 fmt(stars), fmt(double_stars), verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "Every max-equilibrium tree has diameter <= 3; diameter-3 equilibria\n"
                 "appear first at n = 6 (double-stars need >= 2 leaves per root).\n";
  }

  std::cout << "\nTheorem 4 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Shared provenance stamping for the BENCH_*.json emitters: every artifact
// records the git commit it was measured at (passed down by
// bench/run_bench.sh as BNCG_BENCH_GIT_SHA — a C++ program should not
// guess at the repo state) and an ISO-8601 UTC timestamp, so a tracked
// trajectory file is attributable without consulting git history.
#pragma once

#include <cstdlib>
#include <ctime>
#include <ostream>
#include <string>

#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace bncg_bench {

/// Git SHA handed down by run_bench.sh; "unknown" outside the script.
[[nodiscard]] inline std::string git_sha() {
  const char* sha = std::getenv("BNCG_BENCH_GIT_SHA");
  return sha != nullptr && *sha != '\0' ? sha : "unknown";
}

/// Current wall-clock time as ISO-8601 UTC ("2026-07-26T12:34:56Z").
[[nodiscard]] inline std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Emits the shared metadata header of a BENCH_*.json object; the caller
/// opens "{" before and appends "rows": [...] after. Besides the git/time
/// provenance, the header records the execution configuration the numbers
/// were measured under: the process thread-pool width (BNCG_THREADS or
/// hardware_concurrency) and the SIMD dispatch level actually active
/// (cpuid-capped, overridable via BNCG_SIMD) — a trajectory point is only
/// comparable to another at the same threads/simd_level.
inline void write_json_meta(std::ostream& os) {
  os << "  \"git_sha\": \"" << git_sha() << "\",\n"
     << "  \"generated_at\": \"" << iso8601_utc_now() << "\",\n"
     << "  \"threads\": " << bncg::ThreadPool::global().size() << ",\n"
     << "  \"simd_level\": \"" << bncg::simd_level_name(bncg::simd_active_level())
     << "\",\n";
}

}  // namespace bncg_bench

// Reproduces Theorem 13 + Conjecture 14 (§5): sum-equilibrium graphs induce
// ε-distance-(almost-)uniform graphs after the power step, and a probe of
// the conjecture that distance-almost-uniform graphs have diameter O(lg n).
//
// Protocol:
//  (a) take certified sum equilibria (Fig. 3, stars, dynamics-reached) and
//      report their uniformity before and after powering — the theorem's
//      mechanism (distances coalesce onto one or two values);
//  (b) the number-theoretic refinement: a prime power x = O(lg² n) avoiding
//      the distance band exists (prime_avoiding_interval);
//  (c) Conjecture 14 probe: scan diverse graph families, and for every
//      instance that is ε-almost-uniform with small ε, check diameter
//      against C·lg n — the paper's expectation that counterexamples are
//      hard to find.
#include <cmath>
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "gen/cayley.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/projective.hpp"
#include "gen/random.hpp"
#include "graph/distance_uniformity.hpp"
#include "graph/metrics.hpp"
#include "graph/power.hpp"
#include "util/table.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 13 + Conjecture 14 [SPAA'10 §5]: equilibria and distance uniformity\n";
  Xoshiro256ss rng(0xA113);
  bool all_ok = true;

  print_banner(std::cout, "(a) certified sum equilibria -> power graph -> distance bands");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> equilibria;
    equilibria.push_back({"diam3 witness (n=8)", diameter3_sum_equilibrium_n8()});
    equilibria.push_back({"star(32)", star(32)});
    {
      const Graph start = random_connected_gnm(48, 96, rng);
      DynamicsConfig config;
      config.max_moves = 400'000;
      const DynamicsResult r = run_dynamics(start, config);
      if (r.converged) equilibria.push_back({"dynamics(n=48,m=96)", r.graph});
    }
    Table t({"equilibrium", "diam", "eps_almost(G)", "x", "diam(G^x)", "eps_almost(G^x)",
             "verdict"});
    for (const auto& [name, g] : equilibria) {
      const bool certified = is_sum_equilibrium(g);
      const DistanceMatrix dm(g);
      const Vertex d = distance_stats(dm).diameter;
      const UniformityResult before = best_almost_uniformity(dm);
      // Theorem 13 powers by x = Θ(lg n); diameters here are tiny, so x = 2
      // exercises the same mechanism.
      const Vertex x = std::max<Vertex>(2, d / 2);
      const Graph gx = power(dm, x);
      const DistanceMatrix dmx(gx);
      const UniformityResult after = best_almost_uniformity(dmx);
      // Mechanism check: powering never worsens the almost-uniform ε and
      // compresses the diameter to ceil(d/x).
      const bool ok = certified && after.epsilon <= before.epsilon + 1e-12 &&
                      distance_stats(dmx).diameter == (d + x - 1) / x;
      all_ok = all_ok && ok;
      t.add_row({name, fmt(d), fmt(before.epsilon, 3), fmt(x), fmt(distance_stats(dmx).diameter),
                 fmt(after.epsilon, 3), verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) number-theoretic step: prime x avoiding the distance band");
  {
    Table t({"band [D, D+len]", "bound c*lg^2(n)", "prime found", "verdict"});
    struct Band {
      Vertex lo, len, n;
    };
    const Band bands[] = {{40, 10, 1024}, {100, 14, 4096}, {500, 20, 65536}, {2000, 26, 1 << 20}};
    for (const auto& [lo, len, n] : bands) {
      const double lg_n = std::log2(static_cast<double>(n));
      const Vertex bound = static_cast<Vertex>(4.0 * lg_n * lg_n);
      const Vertex p = prime_avoiding_interval(lo, lo + len, bound);
      bool ok = p != 0;
      for (Vertex m = lo; ok && m <= lo + len; ++m) ok = (m % p) != 0;
      all_ok = all_ok && ok;
      t.add_row({"[" + fmt(lo) + ", " + fmt(lo + len) + "]", fmt(bound),
                 p == 0 ? "none" : fmt(p), verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) Conjecture 14 probe: almost-uniform graphs vs O(lg n) diameter");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> family;
    family.push_back({"complete(64)", complete(64)});
    family.push_back({"K_{24,24}", complete_bipartite(24, 24)});
    family.push_back({"petersen", petersen()});
    family.push_back({"hypercube(8)", hypercube(8)});
    family.push_back({"circulant64(1,8)", circulant(64, {1, 8})});
    family.push_back({"circulant96(1..4)", circulant(96, {1, 2, 3, 4})});
    family.push_back({"PG(2,5) incidence", incidence_graph(ProjectivePlane(5))});
    family.push_back({"rotated_torus(8)", rotated_torus(8).graph()});
    family.push_back({"gnm(128, 512)", random_connected_gnm(128, 512, rng)});
    family.push_back({"random_regular(64,5)", random_regular(64, 5, rng)});
    Table t({"graph", "n", "diam", "best eps_almost", "r", "diam <= 3*lg n when eps<1/4",
             "verdict"});
    for (const auto& [name, g] : family) {
      const DistanceMatrix dm(g);
      const UniformityResult u = best_almost_uniformity(dm);
      const Vertex d = distance_stats(dm).diameter;
      const double lg_n = std::log2(static_cast<double>(g.num_vertices()));
      // Gate only the conjecture's regime: small ε.
      const bool in_regime = u.epsilon < 0.25;
      const bool ok = !in_regime || static_cast<double>(d) <= 3.0 * lg_n + 2.0;
      all_ok = all_ok && ok;
      t.add_row({name, fmt(g.num_vertices()), fmt(d), fmt(u.epsilon, 3), fmt(u.radius),
                 in_regime ? (ok ? "yes" : "NO — counterexample?") : "n/a (eps>=1/4)",
                 verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "No counterexample to Conjecture 14 found in the probe families,\n"
                 "matching the paper's experience that even superconstant lower bounds\n"
                 "seem difficult.\n";
  }

  std::cout << "\nTheorem 13 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

#!/usr/bin/env bash
# Builds the benchmark executables and regenerates the tracked perf artifacts
# at the repo root:
#   BENCH_engine.json — engine-vs-naive certification throughput (DESIGN.md §6)
#   BENCH_search.json — incremental-vs-full annealing throughput (DESIGN.md §9)
#
# Usage: bench/run_bench.sh [max_n]   (default 1024 for the engine bench;
# the search bench caps itself at min(max_n, 256))
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
max_n="${1:-1024}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DBNCG_BUILD_BENCHMARKS=ON \
  -DBNCG_BUILD_TESTS=OFF >/dev/null
cmake --build "${build_dir}" --target bench_engine_json bench_search_json -j "$(nproc)" >/dev/null

"${build_dir}/bench_engine_json" "${repo_root}/BENCH_engine.json" "${max_n}"
search_max_n=$(( max_n < 256 ? max_n : 256 ))
"${build_dir}/bench_search_json" "${repo_root}/BENCH_search.json" "${search_max_n}"

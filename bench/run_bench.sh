#!/usr/bin/env bash
# Builds the benchmark executables and regenerates the tracked perf artifacts
# at the repo root:
#   BENCH_engine.json — engine-vs-naive certification throughput (DESIGN.md §6)
#   BENCH_search.json — incremental-vs-full annealing throughput (DESIGN.md §9)
#
# Usage: bench/run_bench.sh [max_n]   (default 1024 for the engine bench;
# the search bench caps itself at min(max_n, 256))
#
# Environment knobs:
#   BNCG_BENCH_OUT_DIR=path  write the JSON artifacts there instead of the
#                            repo root (CI's quick-mode trajectory capture
#                            uploads them as workflow artifacts without
#                            touching the tracked files)
#
# Every artifact is stamped with the current git SHA (exported here as
# BNCG_BENCH_GIT_SHA) and an ISO-8601 UTC timestamp by the emitters.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
max_n="${1:-1024}"
out_dir="${BNCG_BENCH_OUT_DIR:-${repo_root}}"
mkdir -p "${out_dir}"

# Stamp the exact repo state measured: HEAD's SHA, with a -dirty suffix
# when the working tree has uncommitted changes, so artifacts are never
# attributed to a commit that lacks the measured code.
BNCG_BENCH_GIT_SHA="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"
if [ "${BNCG_BENCH_GIT_SHA}" != "unknown" ] && \
   [ -n "$(git -C "${repo_root}" status --porcelain 2>/dev/null)" ]; then
  # Includes untracked files: a new source file is compiled in by the
  # CONFIGURE_DEPENDS globs even though HEAD knows nothing about it.
  BNCG_BENCH_GIT_SHA="${BNCG_BENCH_GIT_SHA}-dirty"
fi
export BNCG_BENCH_GIT_SHA

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DBNCG_BUILD_BENCHMARKS=ON \
  -DBNCG_BUILD_TESTS=OFF >/dev/null
cmake --build "${build_dir}" --target bench_engine_json bench_search_json -j "$(nproc)" >/dev/null

"${build_dir}/bench_engine_json" "${out_dir}/BENCH_engine.json" "${max_n}"
search_max_n=$(( max_n < 256 ? max_n : 256 ))
"${build_dir}/bench_search_json" "${out_dir}/BENCH_search.json" "${search_max_n}"

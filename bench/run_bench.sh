#!/usr/bin/env bash
# Builds the benchmark executables and regenerates BENCH_engine.json at the
# repo root (engine-vs-naive certification throughput; see DESIGN.md).
#
# Usage: bench/run_bench.sh [max_n]   (default 1024)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
max_n="${1:-1024}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DBNCG_BUILD_BENCHMARKS=ON \
  -DBNCG_BUILD_TESTS=OFF >/dev/null
cmake --build "${build_dir}" --target bench_engine_json -j "$(nproc)" >/dev/null

"${build_dir}/bench_engine_json" "${repo_root}/BENCH_engine.json" "${max_n}"

// Reproduces the paper's transfer principle (§1): results about swap
// equilibria apply to the classic α-game for *all* values of α at once,
// because the swap move is α-independent; and the price of anarchy is within
// a constant factor of equilibrium diameter [7].
//
// Protocol:
//  (a) take certified sum swap equilibria of the basic game and verify that
//      no agent has an improving *swap* in the α-game at any α across six
//      orders of magnitude — the α-free transfer, executed;
//  (b) run α-game greedy best-response across an α sweep and report
//      equilibrium social cost / OPT (PoA estimate) next to the equilibrium
//      diameter — the [7] constant-factor relation as a measured table;
//  (c) report the basic game's edge-budget cost ratio on dynamics-reached
//      equilibria (the α-free analogue).
#include <cmath>
#include <iostream>

#include "core/classic_game.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

using namespace bncg;

int main() {
  std::cout << "Transfer principle + price of anarchy [SPAA'10 §1, relation from DHMZ'07]\n";
  Xoshiro256ss rng(0xA0A0);
  bool all_ok = true;

  print_banner(std::cout, "(a) swap-stability of basic-game equilibria transfers to every alpha");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> equilibria;
    equilibria.push_back({"star(12)", star(12)});
    equilibria.push_back({"diam3 witness (n=8)", diameter3_sum_equilibrium_n8()});
    {
      DynamicsConfig config;
      config.max_moves = 300'000;
      const DynamicsResult r = run_dynamics(random_connected_gnm(20, 30, rng), config);
      if (r.converged) equilibria.push_back({"dynamics(n=20,m=30)", r.graph});
    }
    const double alphas[] = {0.01, 0.1, 1.0, 2.0, 10.0, 100.0, 10000.0};
    Table t({"equilibrium", "alphas tested", "improving swaps found", "verdict"});
    for (const auto& [name, g] : equilibria) {
      int swaps_found = 0;
      for (const double alpha : alphas) {
        ClassicGame game(g, alpha);
        BfsWorkspace ws;
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          const auto move = game.best_deviation(v, ws);
          if (move && move->type == ClassicMove::Type::Swap) ++swaps_found;
        }
      }
      all_ok = all_ok && swaps_found == 0;
      t.add_row({name, fmt(static_cast<long long>(std::size(alphas))), fmt(swaps_found),
                 verdict(swaps_found == 0)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) alpha-game greedy equilibria: PoA estimate vs diameter, per alpha");
  {
    Table t({"alpha", "n", "converged", "eq_diam", "social/OPT", "4*(diam+1)", "verdict"});
    const Vertex n = 16;
    for (const double alpha : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
      ClassicGame game(random_connected_gnm(n, 24, rng), alpha);
      const auto run = game.run_best_response(150'000);
      const Vertex d = diameter(game.graph());
      const double poa = game.social_cost() / optimal_social_cost(n, alpha);
      // The [7]-style relation: PoA within a constant factor of diameter.
      const bool ok = poa >= 1.0 - 1e-9 && poa <= 4.0 * (static_cast<double>(d) + 1.0);
      all_ok = all_ok && ok;
      t.add_row({fmt(alpha, 2), fmt(n), run.converged ? "yes" : "no", fmt(d), fmt(poa, 3),
                 fmt(4.0 * (d + 1.0), 1), verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "Same instance family, alpha spanning 0.5 .. 64: the swap-equilibrium\n"
                 "analysis needed no per-alpha case split — the paper's point.\n";
  }

  print_banner(std::cout, "(c) basic game: edge-budget cost ratio of dynamics equilibria");
  {
    Table t({"n", "m", "eq_diam", "sum cost / LB(n,m)", "verdict"});
    for (const Vertex n : {16u, 32u, 64u}) {
      const std::size_t m = 2 * n;
      DynamicsConfig config;
      config.max_moves = 400'000;
      config.seed = rng();
      const DynamicsResult r = run_dynamics(random_connected_gnm(n, m, rng), config);
      if (!r.converged) {
        all_ok = false;
        t.add_row({fmt(n), fmt(m), "-", "did not converge", verdict(false)});
        continue;
      }
      const double ratio = social_cost_ratio(r.graph, UsageCost::Sum);
      const Vertex d = diameter(r.graph);
      const bool ok = ratio >= 1.0 - 1e-12 && ratio <= 2.0;
      all_ok = all_ok && ok;
      t.add_row({fmt(n), fmt(m), fmt(d), fmt(ratio, 4), verdict(ok)});
    }
    t.print(std::cout);
  }

  std::cout << "\nTransfer/PoA overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Engine-vs-naive certification throughput, emitted as machine-readable
// JSON so the perf trajectory is tracked across PRs (BENCH_engine.json at
// the repo root; regenerate with bench/run_bench.sh).
//
// For each (n, m, model) the program certifies the same random connected
// G(n, m) instance:
//   * with the delta-evaluation SwapEngine at its auto-selected distance
//     width (the headline engine numbers),
//   * with the width forced to u8 and to u16 — the ratio of those two runs
//     is the width-adaptivity payoff (DESIGN.md §10) on an instance whose
//     diameter fits the 8-bit cap,
//   * through the sharded certification driver (core/certify_sharded.hpp),
//   * and, on the m = 2n rows, with the naive BFS-per-candidate oracle
//     (the dense m = 4n tier skips the oracle — it needs several minutes
//     per run and the m = 2n rows already track that trajectory; its JSON
//     fields are emitted as null).
// Every pair of certifications is asserted identical (verdict and move
// count) before a row is written. Plain std::chrono harness (no
// google-benchmark) so the output format is fully under our control.
//
// Three game-variant sections track the PR-8 k-move engine paths, each
// engine-vs-naive on the same instance with the answers asserted identical
// before a row is written:
//   * "kstability" — whole-graph k-insertion sweeps (k ∈ {1,2,3}) of the
//     star equilibrium (n = 256 and n = 1024), stable at every agent so the
//     sweep runs full length; the exact cover solver is shared code, so the
//     rows isolate the distance machinery the engine accelerates,
//   * "alpha_game" — α-game greedy-deviation scans over an agent sample
//     (engine: one masked APSP per agent; naive: one BFS per candidate
//     move),
//   * "tree_game" — best tree swaps for every agent of a random tree
//     (single-rooting O(n) rerooting sweep vs the component-BFS oracle).
//
// A "row_cache" section (PR 10) prices the budgeted distance provider:
// the same instance is certified dense and under a half-slab memory budget
// (certificates asserted identical), then a single-scratch sweep harvests
// the cache's hit/miss/eviction/peak-bytes counters — the telemetry DESIGN.md
// §16 quotes for the residency-vs-recompute trade.
//
// A second "kernels" section microbenchmarks the dispatched SIMD kernels
// (util/simd.hpp) directly: each scan-table / combine / addition kernel is
// timed at n = 1024 once with the dispatch pinned to scalar and once at the
// startup-active level (cpuid-capped, BNCG_SIMD-overridable), on the same
// inputs and with identical fixed repetition counts, so the per-call ratio
// is a pure ISA effect. Output checksums are asserted equal across the two
// levels — the exactness contract, enforced even inside the bench.
//
// Usage: bench_engine_json [output.json] [max_n]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json_meta.hpp"
#include "core/certify_sharded.hpp"
#include "core/classic_game.hpp"
#include "core/dist_provider.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "core/swap_engine.hpp"
#include "core/tree_game.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/dist_width.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace bncg;
using Clock = std::chrono::steady_clock;

struct Row {
  Vertex n = 0;
  std::size_t m = 0;
  std::string model;
  Vertex diameter = 0;
  std::uint64_t moves = 0;
  std::string width;  // auto-selected preference
  std::uint64_t width_fallbacks = 0;
  double engine_seconds = 0.0;  // auto width
  double u8_seconds = 0.0;
  double u16_seconds = 0.0;
  double sharded_seconds = 0.0;
  std::size_t shards = 0;
  double naive_seconds = -1.0;  // < 0 ⇒ not measured (dense tier)

  [[nodiscard]] double engine_swaps_per_sec() const {
    return static_cast<double>(moves) / engine_seconds;
  }
  [[nodiscard]] double width_speedup() const { return u16_seconds / u8_seconds; }
  [[nodiscard]] bool has_naive() const { return naive_seconds > 0.0; }
  [[nodiscard]] double naive_swaps_per_sec() const {
    return static_cast<double>(moves) / naive_seconds;
  }
  [[nodiscard]] double speedup() const { return naive_seconds / engine_seconds; }
};

template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Repeats fast certifications until ≥ 0.2 s of wall time for a stable
/// rate; reports the repetition count so per-run counters (the engine's
/// width_fallbacks accumulate across certify() calls) can be de-scaled.
template <typename Fn>
double time_repeated(Fn&& fn, std::uint64_t* reps_out = nullptr) {
  std::uint64_t reps = 0;
  double total = 0.0;
  while (total < 0.2 && reps < 1000) {
    total += time_seconds(fn);
    ++reps;
  }
  if (reps_out != nullptr) *reps_out = reps;
  return total / static_cast<double>(reps);
}

Row measure(Vertex n, std::size_t m, UsageCost model, bool measure_naive) {
  Xoshiro256ss rng(0xBE7C ^ n);
  const Graph g = random_connected_gnm(n, m, rng);
  const bool deletions = model == UsageCost::Max;

  Row row;
  row.n = n;
  row.m = m;
  row.model = model == UsageCost::Sum ? "sum" : "max";
  row.diameter = diameter(g);

  const auto check = [&](const EquilibriumCertificate& a, const EquilibriumCertificate& b,
                         const char* what) {
    if (a.is_equilibrium != b.is_equilibrium || a.moves_checked != b.moves_checked) {
      std::cerr << "FATAL: " << what << " mismatch at n=" << n << " m=" << m
                << " model=" << row.model << "\n";
      std::exit(1);
    }
  };

  const SwapEngine engine_auto(g);
  EquilibriumCertificate cert;
  std::uint64_t reps = 0;
  row.engine_seconds =
      time_repeated([&] { cert = engine_auto.certify(model, deletions); }, &reps);
  row.moves = cert.moves_checked;
  row.width = dist_width_name(engine_auto.preferred_width());
  row.width_fallbacks = engine_auto.width_fallbacks() / reps;  // per-certification count

  const SwapEngine engine_u8(g, WidthPolicy::ForceU8);
  EquilibriumCertificate cert_u8;
  row.u8_seconds = time_repeated([&] { cert_u8 = engine_u8.certify(model, deletions); });
  check(cert, cert_u8, "engine auto/u8");

  const SwapEngine engine_u16(g, WidthPolicy::ForceU16);
  EquilibriumCertificate cert_u16;
  row.u16_seconds = time_repeated([&] { cert_u16 = engine_u16.certify(model, deletions); });
  check(cert, cert_u16, "engine auto/u16");

  ShardedCertificate sharded;
  row.sharded_seconds = time_repeated([&] { sharded = certify_sharded(g, model, deletions); });
  row.shards = sharded.shards_used;
  check(cert, sharded.certificate, "engine/sharded");

  if (measure_naive) {
    EquilibriumCertificate naive_cert;
    row.naive_seconds = time_seconds([&] {
      naive_cert = model == UsageCost::Sum ? naive::certify_sum_equilibrium(g)
                                           : naive::certify_max_equilibrium(g);
    });
    check(cert, naive_cert, "engine/naive");
  }
  return row;
}

// ---------------------------------------------------------------------------
// Game-variant rows (PR 8): the k-move engine paths vs the bncg::naive
// oracles, answers asserted identical before timing is recorded.

[[noreturn]] void variant_mismatch(const char* what, Vertex n) {
  std::cerr << "FATAL: " << what << " engine/naive mismatch at n=" << n << "\n";
  std::exit(1);
}

struct KStabilityRow {
  std::string instance;
  Vertex n = 0;
  std::size_t m = 0;
  Vertex k = 0;
  bool stable = false;
  double engine_seconds = 0.0;
  double naive_seconds = 0.0;

  [[nodiscard]] double speedup() const { return naive_seconds / engine_seconds; }
};

std::vector<KStabilityRow> measure_kstability(Vertex max_n) {
  // The exact set-cover solver is SHARED between engine and naive
  // (cover_select), so these rows isolate what the engine actually
  // accelerates: the distance machinery (batched bit-parallel APSP + SIMD
  // far/cover row scans vs one scalar BFS per row + scalar scans). Instances
  // with giant far spheres (e.g. diagonal tori) make the shared solver
  // dominate both sides and the ratio collapses to 1× by construction —
  // those live in the differential suites, not here.
  //
  // Workload: whole-graph insertion_stability sweeps of the star — the
  // paper's Theorem 1 equilibrium, and the natural "certify the known
  // equilibrium is k-insertion-robust" question. Every agent is stable at
  // small k (a leaf's far sphere is all n − 2 non-neighbors and only x
  // itself relieves x, so no k ≤ 3 cover exists), which makes the sweep run
  // the far/cover machinery at ALL n agents with the shared solver staying
  // trivial (singleton sets) — the ratio is the distance machinery, at full
  // sweep length.
  std::vector<KStabilityRow> rows;
  for (const Vertex n : {Vertex{256}, Vertex{1024}}) {
    if (n > max_n) continue;
    const Graph g = star(n);
    for (Vertex k = 1; k <= 3; ++k) {
      KStabilityRow row;
      row.instance = "star_sweep";
      row.n = g.num_vertices();
      row.m = g.num_edges();
      row.k = k;
      KStabilityReport engine_report, naive_report;
      row.engine_seconds = time_repeated([&] { engine_report = insertion_stability(g, k); });
      row.naive_seconds =
          time_repeated([&] { naive_report = naive::insertion_stability(g, k); });
      if (engine_report.stable != naive_report.stable ||
          engine_report.witness_vertex != naive_report.witness_vertex ||
          engine_report.witness_endpoints != naive_report.witness_endpoints) {
        variant_mismatch("kstability", row.n);
      }
      row.stable = engine_report.stable;
      std::cout << "kstability " << row.instance << " n=" << row.n << " k=" << k
                << " stable=" << row.stable << " engine=" << row.engine_seconds
                << "s naive=" << row.naive_seconds << "s speedup=" << row.speedup() << "x\n";
      rows.push_back(row);
    }
  }
  return rows;
}

struct AlphaRow {
  Vertex n = 0;
  std::size_t m = 0;
  double alpha = 0.0;
  Vertex agents = 0;
  double engine_seconds = 0.0;
  double naive_seconds = 0.0;

  [[nodiscard]] double speedup() const { return naive_seconds / engine_seconds; }
};

std::vector<AlphaRow> measure_alpha_game(Vertex max_n) {
  // Greedy-deviation scans at α = 2 over an agent sample (the naive side
  // pays one BFS per candidate move — Θ(deg·n) BFS per agent — so the
  // n = 1024 row samples 16 agents; the ratio is per-agent and
  // sample-size-independent). Engine timing includes the SwapEngine build:
  // that is what a caller actually pays per graph version.
  std::vector<AlphaRow> rows;
  struct Tier {
    Vertex n;
    Vertex agents;
  };
  for (const Tier tier : {Tier{256, 64}, Tier{1024, 16}}) {
    if (tier.n > max_n) continue;
    Xoshiro256ss rng(0xA1FA ^ tier.n);
    const Graph g = random_connected_gnm(tier.n, 2 * std::size_t{tier.n}, rng);
    std::vector<Vertex> owners;
    owners.reserve(g.num_edges());
    for (const Edge& e : g.edges()) owners.push_back(rng.bernoulli(0.5) ? e.u : e.v);
    const ClassicGame game(g, /*alpha=*/2.0, owners);

    AlphaRow row;
    row.n = g.num_vertices();
    row.m = g.num_edges();
    row.alpha = 2.0;
    row.agents = tier.agents;

    std::vector<std::optional<ClassicMove>> engine_moves(tier.agents), naive_moves(tier.agents);
    row.engine_seconds = time_repeated([&] {
      const SwapEngine engine(g);
      SwapEngine::Scratch scratch;
      for (Vertex v = 0; v < tier.agents; ++v) {
        engine_moves[v] = game.best_deviation_engine(engine, scratch, v);
      }
    });
    row.naive_seconds = time_seconds([&] {
      BfsWorkspace ws;
      for (Vertex v = 0; v < tier.agents; ++v) {
        naive_moves[v] = game.best_deviation_naive(v, ws);
      }
    });
    for (Vertex v = 0; v < tier.agents; ++v) {
      const auto& a = engine_moves[v];
      const auto& b = naive_moves[v];
      if (a.has_value() != b.has_value() ||
          (a && (a->type != b->type || a->w != b->w || a->w2 != b->w2 || a->gain != b->gain))) {
        variant_mismatch("alpha_game", row.n);
      }
    }
    std::cout << "alpha_game n=" << row.n << " agents=" << row.agents
              << " engine=" << row.engine_seconds << "s naive=" << row.naive_seconds
              << "s speedup=" << row.speedup() << "x\n";
    rows.push_back(row);
  }
  return rows;
}

struct TreeRow {
  Vertex n = 0;
  std::uint64_t movers = 0;  ///< agents with an improving swap
  double engine_seconds = 0.0;
  double naive_seconds = 0.0;

  [[nodiscard]] double speedup() const { return naive_seconds / engine_seconds; }
};

std::vector<TreeRow> measure_tree_game(Vertex max_n) {
  // Best tree swap for every agent: the O(n) single-rooting sweep vs the
  // component-BFS + induced-subgraph oracle, full n-agent sweeps both sides.
  std::vector<TreeRow> rows;
  for (const Vertex n : {Vertex{256}, Vertex{1024}}) {
    if (n > max_n) continue;
    Xoshiro256ss rng(0x73EE ^ n);
    const Graph tree = random_tree(n, rng);

    TreeRow row;
    row.n = n;
    std::vector<std::optional<TreeMove>> engine_moves(n), naive_moves(n);
    TreeGameScratch scratch;  // sweeps amortize the per-call allocations
    row.engine_seconds = time_repeated([&] {
      for (Vertex v = 0; v < n; ++v) engine_moves[v] = best_tree_deviation(tree, v, scratch);
    });
    row.naive_seconds = time_repeated([&] {
      for (Vertex v = 0; v < n; ++v) naive_moves[v] = naive::best_tree_deviation(tree, v);
    });
    for (Vertex v = 0; v < n; ++v) {
      const auto& a = engine_moves[v];
      const auto& b = naive_moves[v];
      if (a.has_value() != b.has_value() ||
          (a && (a->old_neighbor != b->old_neighbor || a->new_neighbor != b->new_neighbor ||
                 a->gain != b->gain))) {
        variant_mismatch("tree_game", n);
      }
      row.movers += a.has_value() ? 1 : 0;
    }
    std::cout << "tree_game n=" << row.n << " movers=" << row.movers
              << " engine=" << row.engine_seconds << "s naive=" << row.naive_seconds
              << "s speedup=" << row.speedup() << "x\n";
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Row-cache rows (PR 10): dense vs budgeted certification of the same
// instance, certificates asserted identical, plus the cache telemetry from
// a single-scratch sweep.

struct RowCacheRow {
  std::string instance;
  Vertex n = 0;
  std::size_t m = 0;
  std::string model;
  std::uint64_t budget_bytes = 0;  ///< per-lane cap handed to the engine
  std::uint64_t dense_bytes = 0;   ///< what the dense u16 slab would take
  std::uint64_t moves = 0;
  double dense_seconds = 0.0;
  double budgeted_seconds = 0.0;
  RowCacheStats stats;  ///< from the single-scratch sweep (not the timed runs)

  [[nodiscard]] double slowdown() const { return budgeted_seconds / dense_seconds; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = stats.hits + stats.misses;
    return total == 0 ? 0.0 : static_cast<double>(stats.hits) / static_cast<double>(total);
  }
};

RowCacheRow measure_row_cache(std::string instance, const Graph& g, UsageCost model) {
  const Vertex n = g.num_vertices();
  const bool deletions = model == UsageCost::Max;

  RowCacheRow row;
  row.instance = std::move(instance);
  row.n = n;
  row.m = g.num_edges();
  row.model = model == UsageCost::Sum ? "sum" : "max";
  row.dense_bytes = 2ull * n * n;  // the u16 slab the budget displaces

  // Half the u16 slab per engine lane: big enough that neighbor rows stay
  // resident, small enough that far/candidate traffic has to recycle blocks.
  const std::size_t lanes = ThreadPool::global().size();
  ResourceConfig budgeted_res;
  budgeted_res.width = WidthPolicy::ForceU16;
  budgeted_res.mem_budget = static_cast<std::uint64_t>(lanes) * n * n;
  row.budget_bytes = static_cast<std::uint64_t>(n) * n;

  const SwapEngine dense_engine(g, WidthPolicy::ForceU16);
  const SwapEngine budgeted_engine(g, budgeted_res);
  if (budgeted_engine.budget_policy().storage_for(n, DistWidth::U16) != RowStorage::Budgeted) {
    std::cerr << "FATAL: row_cache bench budget did not force budgeted storage at n=" << n
              << "\n";
    std::exit(1);
  }

  EquilibriumCertificate dense_cert, budgeted_cert;
  row.dense_seconds = time_repeated([&] { dense_cert = dense_engine.certify(model, deletions); });
  row.budgeted_seconds =
      time_repeated([&] { budgeted_cert = budgeted_engine.certify(model, deletions); });
  if (dense_cert.is_equilibrium != budgeted_cert.is_equilibrium ||
      dense_cert.moves_checked != budgeted_cert.moves_checked) {
    std::cerr << "FATAL: row_cache dense/budgeted certificate mismatch at n=" << n
              << " model=" << row.model << "\n";
    std::exit(1);
  }
  row.moves = dense_cert.moves_checked;

  // The timed certify() runs keep their counters in per-lane scratches; one
  // sequential sweep over every agent reproduces the access pattern with a
  // single observable scratch.
  SwapEngine::Scratch scratch;
  for (Vertex v = 0; v < n; ++v) {
    (void)budgeted_engine.best_deviation(v, model, scratch, /*include_deletions=*/deletions);
  }
  row.stats = scratch.row_cache_stats();
  return row;
}

std::vector<RowCacheRow> measure_row_cache_all(Vertex max_n) {
  std::vector<RowCacheRow> rows;
  if (max_n >= 1024) {
    Xoshiro256ss rng(0xBE7C ^ Vertex{1024});
    const Graph g = random_connected_gnm(1024, 2048, rng);
    rows.push_back(measure_row_cache("gnm", g, UsageCost::Sum));
    rows.push_back(measure_row_cache("gnm", g, UsageCost::Max));
  }
  if (max_n >= 512) {
    // The paper-family instance the 2^17 budget smoke scales up
    // (scripts/certify_budget.sh): Theorem 12's rotated torus.
    rows.push_back(measure_row_cache("torus_k16", rotated_torus(16).graph(), UsageCost::Max));
  }
  for (const RowCacheRow& r : rows) {
    std::cout << "row_cache " << r.instance << " n=" << r.n << " model=" << r.model
              << " dense=" << r.dense_seconds << "s budgeted=" << r.budgeted_seconds
              << "s slowdown=" << r.slowdown() << "x hit_rate=" << r.hit_rate()
              << " evictions=" << r.stats.evictions << " peak_bytes=" << r.stats.peak_bytes
              << "\n";
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Kernel microbenchmarks: scalar vs the startup-active dispatch level.

struct KernelRow {
  std::string width;   // "u8" / "u16"
  std::string kernel;  // simd::Kernels member name
  std::uint32_t n = 0;
  double scalar_seconds = 0.0;  // seconds per call, dispatch pinned to scalar
  double simd_seconds = 0.0;    // seconds per call at the startup-active level

  [[nodiscard]] double speedup() const { return scalar_seconds / simd_seconds; }
};

template <typename Fn>
double time_calls(Fn&& fn, std::uint64_t reps) {
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double>(Clock::now() - start).count() /
         static_cast<double>(reps);
}

/// Times the named kernel workload once per dispatch level on identical
/// state (reset() restores mutable inputs, checksum() folds the outputs) and
/// asserts the two levels produced bit-identical results before recording
/// the row. `active` is the level the process started at — comparing
/// against it (not the hardware max) keeps BNCG_SIMD=scalar runs honest.
template <typename Reset, typename Run, typename Checksum>
void bench_kernel(std::vector<KernelRow>& rows, const char* width, const char* name,
                  std::uint32_t n, std::uint64_t reps, SimdLevel active, Reset&& reset,
                  Run&& run, Checksum&& checksum) {
  KernelRow row;
  row.width = width;
  row.kernel = name;
  row.n = n;

  simd_set_level(SimdLevel::Scalar);
  reset();
  row.scalar_seconds = time_calls(run, reps);
  const std::uint64_t scalar_sum = checksum();

  simd_set_level(active);
  reset();
  row.simd_seconds = time_calls(run, reps);
  const std::uint64_t simd_sum = checksum();

  if (scalar_sum != simd_sum) {
    std::cerr << "FATAL: kernel " << width << "/" << name
              << " diverged between scalar and " << simd_level_name(active) << "\n";
    std::exit(1);
  }
  rows.push_back(row);
}

template <typename Dist>
void measure_kernels(std::vector<KernelRow>& rows, SimdLevel active) {
  constexpr std::uint32_t n = 1024;
  constexpr Dist inf = kSearchInfFor<Dist>;
  const char* width = sizeof(Dist) == 1 ? "u8" : "u16";
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  Xoshiro256ss rng(0xC0DE ^ sizeof(Dist));

  const auto rand_row = [&](AlignedVec<Dist>& row) {
    row.resize(n);
    for (Dist& d : row) {
      // Mostly small finite distances with an infinite sprinkle, the shape
      // the engines actually stream.
      d = rng.below(16) == 0 ? inf : static_cast<Dist>(rng.below(kMaxFiniteFor<Dist>));
    }
  };

  constexpr std::size_t kFolds = 8;  // neighbor rows per scan_min_update call
  std::vector<AlignedVec<Dist>> nbr(kFolds);
  for (auto& row : nbr) rand_row(row);
  AlignedVec<Dist> m, c, ru, rv, src;
  rand_row(m);
  rand_row(c);
  rand_row(ru);
  rand_row(rv);
  rand_row(src);

  AlignedVec<Dist> min1(n), min2(n), dst(n);
  AlignedVec<std::uint32_t> argmin(n), r1(n);
  const auto fold_u64 = [](const auto& v) {
    std::uint64_t sum = 0;
    for (const auto x : v) sum = sum * 1315423911u + static_cast<std::uint64_t>(x);
    return sum;
  };

  // scan_min_update: reset tables, fold kFolds neighbor rows per call.
  bench_kernel(
      rows, width, "scan_min_update", n, 4000, active,
      [&] {
        min1.assign(n, inf);
        min2.assign(n, inf);
        argmin.assign(n, kNoVertex);
      },
      [&] {
        min1.assign(n, inf);
        min2.assign(n, inf);
        argmin.assign(n, kNoVertex);
        for (std::size_t z = 0; z < kFolds; ++z) {
          kern.scan_min_update(min1.data(), min2.data(), argmin.data(), nbr[z].data(),
                               static_cast<std::uint32_t>(z), n);
        }
      },
      [&] { return fold_u64(min1) ^ fold_u64(min2) ^ fold_u64(argmin); });

  // select_mrow: materialize M^w from the tables just built, w cycling.
  std::uint32_t w = 0;
  bench_kernel(
      rows, width, "select_mrow", n, 20000, active, [&] { w = 0; },
      [&] {
        kern.select_mrow(dst.data(), min1.data(), min2.data(), argmin.data(), w, n);
        w = (w + 1) % kFolds;
      },
      [&] { return fold_u64(dst); });

  // r1_add: accumulate one row's relief contribution per call (u32
  // wraparound is deterministic, so the accumulated table checksums).
  bench_kernel(
      rows, width, "r1_add", n, 20000, active, [&] { r1.assign(n, 0); },
      [&] { kern.r1_add(r1.data(), static_cast<Dist>(3), src.data(), n); },
      [&] { return fold_u64(r1); });

  std::uint64_t acc = 0;
  bench_kernel(
      rows, width, "combine_sum", n, 20000, active, [&] { acc = 0; },
      [&] { acc += kern.combine_sum(m.data(), c.data(), n, inf); },
      [&] { return acc; });

  bench_kernel(
      rows, width, "combine_max", n, 20000, active, [&] { acc = 0; },
      [&] { acc += kern.combine_max(m.data(), c.data(), n, inf); },
      [&] { return acc; });

  bench_kernel(
      rows, width, "addition_row", n, 20000, active, [&] { dst.assign(n, 0); },
      [&] {
        kern.addition_row(src.data(), dst.data(), ru.data(), rv.data(), static_cast<Dist>(2),
                          static_cast<Dist>(3), n, inf);
      },
      [&] { return fold_u64(dst); });
}

std::vector<KernelRow> measure_all_kernels() {
  const SimdLevel active = simd_active_level();
  std::vector<KernelRow> rows;
  measure_kernels<std::uint8_t>(rows, active);
  measure_kernels<std::uint16_t>(rows, active);
  simd_set_level(active);  // restore the startup dispatch for any later code
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  Vertex max_n = 1024;
  if (argc > 2) {
    try {
      max_n = static_cast<Vertex>(std::stoul(argv[2]));
    } catch (const std::exception&) {
      std::cerr << "usage: bench_engine_json [output.json] [max_n]\n";
      return 2;
    }
  }

  struct Tier {
    Vertex n;
    std::size_t m_factor;
    bool naive;
  };
  // m = 2n rows keep the PR-1 naive trajectory; the m = 4n row is the
  // combine-bound tier where the width adaptivity pays the most.
  const std::vector<Tier> tiers = {{256, 2, true}, {1024, 2, true}, {1024, 4, false}};

  std::vector<Row> rows;
  for (const Tier& tier : tiers) {
    if (tier.n > max_n) continue;
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const Row row = measure(tier.n, tier.m_factor * tier.n, model, tier.naive);
      std::cout << "n=" << row.n << " m=" << row.m << " model=" << row.model
                << " diameter=" << row.diameter << " moves=" << row.moves
                << " width=" << row.width << " engine=" << row.engine_seconds
                << "s u8=" << row.u8_seconds << "s u16=" << row.u16_seconds
                << "s width_speedup=" << row.width_speedup()
                << "x sharded=" << row.sharded_seconds << "s";
      if (row.has_naive()) {
        std::cout << " naive=" << row.naive_seconds << "s speedup=" << row.speedup() << "x";
      }
      std::cout << "\n";
      rows.push_back(row);
    }
  }

  const std::vector<KStabilityRow> kstability_rows = measure_kstability(max_n);
  const std::vector<AlphaRow> alpha_rows = measure_alpha_game(max_n);
  const std::vector<TreeRow> tree_rows = measure_tree_game(max_n);
  const std::vector<RowCacheRow> row_cache_rows = measure_row_cache_all(max_n);

  const std::vector<KernelRow> kernel_rows = measure_all_kernels();
  for (const KernelRow& k : kernel_rows) {
    std::cout << "kernel " << k.width << "/" << k.kernel << " n=" << k.n
              << " scalar=" << k.scalar_seconds * 1e9 << "ns simd=" << k.simd_seconds * 1e9
              << "ns speedup=" << k.speedup() << "x\n";
  }

  std::ofstream out(out_path);
  out << "{\n";
  bncg_bench::write_json_meta(out);
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"m\": " << r.m << ", \"model\": \"" << r.model << "\""
        << ", \"diameter\": " << r.diameter << ", \"moves_checked\": " << r.moves
        << ", \"width\": \"" << r.width << "\""
        << ", \"width_fallbacks\": " << r.width_fallbacks
        << ", \"engine_seconds\": " << r.engine_seconds
        << ", \"engine_swaps_per_sec\": " << r.engine_swaps_per_sec()
        << ", \"u8_seconds\": " << r.u8_seconds << ", \"u16_seconds\": " << r.u16_seconds
        << ", \"width_speedup\": " << r.width_speedup()
        << ", \"sharded_seconds\": " << r.sharded_seconds << ", \"shards\": " << r.shards;
    if (r.has_naive()) {
      out << ", \"naive_skipped\": false, \"naive_seconds\": " << r.naive_seconds
          << ", \"naive_swaps_per_sec\": " << r.naive_swaps_per_sec()
          << ", \"speedup\": " << r.speedup();
    } else {
      // The dense tier deliberately skips the minutes-long oracle run; say
      // so explicitly instead of emitting bare nulls.
      out << ", \"naive_skipped\": true";
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"kstability\": [\n";
  for (std::size_t i = 0; i < kstability_rows.size(); ++i) {
    const KStabilityRow& r = kstability_rows[i];
    out << "    {\"instance\": \"" << r.instance << "\", \"n\": " << r.n << ", \"m\": " << r.m
        << ", \"k\": " << r.k << ", \"stable\": " << (r.stable ? "true" : "false")
        << ", \"engine_seconds\": " << r.engine_seconds
        << ", \"naive_seconds\": " << r.naive_seconds << ", \"speedup\": " << r.speedup()
        << "}" << (i + 1 < kstability_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"alpha_game\": [\n";
  for (std::size_t i = 0; i < alpha_rows.size(); ++i) {
    const AlphaRow& r = alpha_rows[i];
    out << "    {\"n\": " << r.n << ", \"m\": " << r.m << ", \"alpha\": " << r.alpha
        << ", \"agents\": " << r.agents << ", \"engine_seconds\": " << r.engine_seconds
        << ", \"naive_seconds\": " << r.naive_seconds << ", \"speedup\": " << r.speedup()
        << "}" << (i + 1 < alpha_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"tree_game\": [\n";
  for (std::size_t i = 0; i < tree_rows.size(); ++i) {
    const TreeRow& r = tree_rows[i];
    out << "    {\"n\": " << r.n << ", \"movers\": " << r.movers
        << ", \"engine_seconds\": " << r.engine_seconds
        << ", \"naive_seconds\": " << r.naive_seconds << ", \"speedup\": " << r.speedup()
        << "}" << (i + 1 < tree_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"row_cache\": [\n";
  for (std::size_t i = 0; i < row_cache_rows.size(); ++i) {
    const RowCacheRow& r = row_cache_rows[i];
    out << "    {\"instance\": \"" << r.instance << "\", \"n\": " << r.n << ", \"m\": " << r.m
        << ", \"model\": \"" << r.model << "\""
        << ", \"budget_bytes\": " << r.budget_bytes << ", \"dense_bytes\": " << r.dense_bytes
        << ", \"moves_checked\": " << r.moves << ", \"dense_seconds\": " << r.dense_seconds
        << ", \"budgeted_seconds\": " << r.budgeted_seconds
        << ", \"slowdown\": " << r.slowdown() << ", \"hits\": " << r.stats.hits
        << ", \"misses\": " << r.stats.misses << ", \"hit_rate\": " << r.hit_rate()
        << ", \"evictions\": " << r.stats.evictions << ", \"contexts\": " << r.stats.contexts
        << ", \"peak_bytes\": " << r.stats.peak_bytes << "}"
        << (i + 1 < row_cache_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& k = kernel_rows[i];
    out << "    {\"width\": \"" << k.width << "\", \"kernel\": \"" << k.kernel << "\""
        << ", \"n\": " << k.n << ", \"scalar_seconds_per_call\": " << k.scalar_seconds
        << ", \"simd_seconds_per_call\": " << k.simd_seconds
        << ", \"speedup\": " << k.speedup() << "}"
        << (i + 1 < kernel_rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Engine-vs-naive certification throughput, emitted as machine-readable
// JSON so the perf trajectory is tracked across PRs (BENCH_engine.json at
// the repo root; regenerate with bench/run_bench.sh).
//
// For each (n, model) the program certifies the same random connected
// G(n, 2n) instance with the delta-evaluation SwapEngine and with the naive
// BFS-per-candidate oracle, reporting tentative swaps evaluated per second
// and the speedup ratio. Plain std::chrono harness (no google-benchmark) so
// the output format is fully under our control.
//
// Usage: bench_engine_json [output.json] [max_n]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace bncg;
using Clock = std::chrono::steady_clock;

struct Row {
  Vertex n = 0;
  std::string model;
  std::uint64_t moves = 0;
  double engine_seconds = 0.0;
  double naive_seconds = 0.0;

  [[nodiscard]] double engine_swaps_per_sec() const {
    return static_cast<double>(moves) / engine_seconds;
  }
  [[nodiscard]] double naive_swaps_per_sec() const {
    return static_cast<double>(moves) / naive_seconds;
  }
  [[nodiscard]] double speedup() const { return naive_seconds / engine_seconds; }
};

template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Row measure(Vertex n, UsageCost model) {
  Xoshiro256ss rng(0xBE7C ^ n);
  const Graph g = random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng);
  const bool deletions = model == UsageCost::Max;

  Row row;
  row.n = n;
  row.model = model == UsageCost::Sum ? "sum" : "max";

  const SwapEngine engine(g);
  EquilibriumCertificate engine_cert;
  // Engine runs are fast; repeat until ≥0.2 s of wall time for a stable rate.
  std::uint64_t reps = 0;
  double engine_total = 0.0;
  while (engine_total < 0.2 && reps < 1000) {
    engine_total += time_seconds([&] { engine_cert = engine.certify(model, deletions); });
    ++reps;
  }
  row.engine_seconds = engine_total / static_cast<double>(reps);
  row.moves = engine_cert.moves_checked;

  EquilibriumCertificate naive_cert;
  row.naive_seconds = time_seconds([&] {
    naive_cert = model == UsageCost::Sum ? naive::certify_sum_equilibrium(g)
                                         : naive::certify_max_equilibrium(g);
  });

  // Differential sanity on the benchmark instance itself.
  if (engine_cert.is_equilibrium != naive_cert.is_equilibrium ||
      engine_cert.moves_checked != naive_cert.moves_checked) {
    std::cerr << "FATAL: engine/naive mismatch at n=" << n << " model=" << row.model << "\n";
    std::exit(1);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  Vertex max_n = 1024;
  if (argc > 2) {
    try {
      max_n = static_cast<Vertex>(std::stoul(argv[2]));
    } catch (const std::exception&) {
      std::cerr << "usage: bench_engine_json [output.json] [max_n]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  for (const Vertex n : {Vertex{256}, Vertex{1024}}) {
    if (n > max_n) continue;
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const Row row = measure(n, model);
      std::cout << "n=" << row.n << " model=" << row.model << " moves=" << row.moves
                << " engine=" << row.engine_seconds << "s naive=" << row.naive_seconds
                << "s speedup=" << row.speedup() << "x\n";
      rows.push_back(row);
    }
  }

  std::ofstream out(out_path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"n\": " << r.n << ", \"model\": \"" << r.model << "\""
        << ", \"moves_checked\": " << r.moves
        << ", \"engine_seconds\": " << r.engine_seconds
        << ", \"naive_seconds\": " << r.naive_seconds
        << ", \"engine_swaps_per_sec\": " << r.engine_swaps_per_sec()
        << ", \"naive_swaps_per_sec\": " << r.naive_swaps_per_sec()
        << ", \"speedup\": " << r.speedup() << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

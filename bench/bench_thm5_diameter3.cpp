// Reproduces Theorem 5 + Figure 3 (§3.1): "There is a diameter-3 sum
// equilibrium graph" — the first separation between trees (diameter 2,
// Theorem 1) and general graphs.
//
// REPRODUCTION FINDING. The paper's literal Figure 3 instance is NOT a sum
// equilibrium: each d_i agent improves by swapping d_i c_{i,k} onto the
// matched partner of c_{i,k} in another petal. The gain is 3 (partner, b_j,
// d_j — exactly the paper's own Lemma 7 accounting) but the loss is only 2,
// because Lemma 8's penalty for d(d_i, c_{i,k}) is ≥ 1, not ≥ 2, when the
// swap target is a *neighbor* of the dropped vertex — the exception stated
// inside Lemma 8 itself, which the d_i case of the proof overlooks.
//
// The theorem's existential statement survives: the library's annealing
// search found a diameter-3 sum equilibrium on 8 vertices, certified
// exhaustively below, and exhaustive enumeration of all graphs on n ≤ 7
// vertices shows the witness is vertex-minimal.
#include <iostream>

#include "core/equilibrium.hpp"
#include "core/search.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/isomorphism.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 5 + Figure 3 [SPAA'10 §3.1]: a diameter-3 sum equilibrium exists\n";
  bool all_ok = true;

  print_banner(std::cout, "(a) literal Figure 3: structure matches the paper");
  {
    const Graph g = fig3_diameter3_graph();
    Table t({"property", "measured", "paper", "verdict"});
    const Vertex d = diameter(g);
    const Vertex gi = girth(g);
    t.add_row({"num_vertices", fmt(g.num_vertices()), "13", verdict(g.num_vertices() == 13)});
    t.add_row({"num_edges", fmt(g.num_edges()), "21", verdict(g.num_edges() == 21)});
    t.add_row({"diameter", fmt(d), "3", verdict(d == 3)});
    t.add_row({"girth", fmt(gi), "4", verdict(gi == 4)});
    all_ok = all_ok && g.num_vertices() == 13 && g.num_edges() == 21 && d == 3 && gi == 4;
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) literal Figure 3: the d-agent refutation (erratum)");
  {
    const Graph g = fig3_diameter3_graph();
    const EquilibriumCertificate cert = certify_sum_equilibrium(g);
    const auto [v, rm, add] = fig3_refuting_swap();
    Graph h = g;
    BfsWorkspace ws;
    const std::uint64_t before = vertex_cost(h, v, UsageCost::Sum, ws);
    apply_swap(h, {v, rm, add});
    const std::uint64_t after = vertex_cost(h, v, UsageCost::Sum, ws);
    Table t({"check", "value", "verdict"});
    t.add_row({"certifier verdict on literal fig3", cert.is_equilibrium ? "equilibrium" : "refuted",
               verdict(!cert.is_equilibrium)});
    t.add_row({"documented swap d1: c11 -> c21", fmt(before) + " -> " + fmt(after),
               verdict(before == 27 && after == 26)});
    t.add_row({"total unrest (only the three d-agents)", fmt(sum_unrest(g)),
               verdict(sum_unrest(g) == 3)});
    all_ok = all_ok && !cert.is_equilibrium && before == 27 && after == 26 && sum_unrest(g) == 3;
    t.print(std::cout);
    std::cout << "Gain: partner c21 (-1), b2 (-1), d2 (-1); loss: c11 (+1), c32 (+1) — net -1.\n"
                 "Lemma 8's neighbor exception applies because c21 is matched to c11.\n";
  }

  print_banner(std::cout, "(c) repaired witness: certified diameter-3 sum equilibrium (n=8)");
  {
    const Graph g = diameter3_sum_equilibrium_n8();
    Timer timer;
    const EquilibriumCertificate cert = certify_sum_equilibrium(g);
    Table t({"n", "m", "diameter", "swaps_checked", "is_sum_equilibrium", "time_ms", "verdict"});
    const bool ok = cert.is_equilibrium && diameter(g) == 3;
    all_ok = all_ok && ok;
    t.add_row({fmt(g.num_vertices()), fmt(g.num_edges()), fmt(diameter(g)),
               fmt(cert.moves_checked), cert.is_equilibrium ? "yes" : "no",
               fmt(timer.millis(), 2), verdict(ok)});
    t.print(std::cout);
    std::cout << "edges: " << to_string(g) << "\n";
  }

  print_banner(std::cout, "(d) minimality: exhaustive enumeration over all graphs on n <= 7");
  {
    Table t({"n", "labelled graphs", "diameter-3 sum equilibria", "time_s", "verdict"});
    for (const Vertex n : {5u, 6u, 7u}) {
      Timer timer;
      const auto found = exhaustive_diameter3_sum_equilibrium(n);
      const std::uint64_t total = std::uint64_t{1} << (n * (n - 1) / 2);
      all_ok = all_ok && !found.has_value();
      t.add_row({fmt(n), fmt(total), found ? "FOUND (unexpected)" : "none", fmt(timer.seconds(), 2),
                 verdict(!found.has_value())});
    }
    t.print(std::cout);
    std::cout << "The 8-vertex witness is therefore vertex-minimal.\n";
  }

  print_banner(std::cout, "(d') multiplicity probe: independent annealing runs at n = 8");
  {
    // Independent seeded searches from random starts. Finding: diameter-3
    // sum equilibria at n = 8 are NOT unique — the searches return several
    // pairwise non-isomorphic witnesses (with varying edge counts), so
    // Theorem 5's witness space is already rich at the minimal vertex count.
    const Graph canonical = diameter3_sum_equilibrium_n8();
    std::vector<Graph> classes{canonical};
    Table t({"seed", "found", "m", "certified", "isomorphism class"});
    int found_count = 0, certified_count = 0;
    Xoshiro256ss rng(0x715);
    for (const std::uint64_t seed : {7ull, 99ull, 1234ull, 31415ull}) {
      AnnealConfig config;
      config.steps = 6000;
      config.seed = seed;
      const auto found = anneal_sum_equilibrium(random_connected_gnm(8, 16, rng), config);
      if (!found) {
        t.add_row({fmt(seed), "no (budget)", "-", "-", "-"});
        continue;
      }
      ++found_count;
      const bool certified = is_sum_equilibrium(*found) && diameter(*found) == 3;
      certified_count += certified;
      std::size_t cls = classes.size();
      for (std::size_t i = 0; i < classes.size(); ++i) {
        if (are_isomorphic(*found, classes[i])) {
          cls = i;
          break;
        }
      }
      if (cls == classes.size()) classes.push_back(*found);
      t.add_row({fmt(seed), "yes", fmt(found->num_edges()), certified ? "yes" : "NO",
                 cls == 0 ? "canonical" : ("new #" + fmt(cls))});
    }
    t.print(std::cout);
    all_ok = all_ok && found_count > 0 && certified_count == found_count;
    std::cout << found_count << " searches succeeded; " << classes.size()
              << " pairwise non-isomorphic diameter-3 sum equilibria known at n = 8\n"
                 "(canonical witness + search finds). Minimality is per-(n): none exist\n"
                 "at n <= 7; multiplicity at n = 8 is a finding of this reproduction.\n";
  }

  print_banner(std::cout, "(e) the separation (paper's Table-free summary)");
  {
    Table t({"family", "max sum-equilibrium diameter", "source"});
    t.add_row({"trees", "2", "Theorem 1 (star only)"});
    t.add_row({"general graphs", ">= 3", "Theorem 5 (witness in (c))"});
    t.print(std::cout);
  }

  std::cout << "\nTheorem 5 overall: " << verdict(all_ok)
            << "  (existential claim upheld; literal Figure 3 instance refuted)\n";
  return all_ok ? 0 : 1;
}

// Incremental-vs-full-recompute annealing throughput, emitted as
// machine-readable JSON (BENCH_search.json at the repo root; regenerate with
// bench/run_bench.sh).
//
// For each (n, model) the program replays the SAME annealing schedule — same
// start graph, same seed, same proposal sequence — three times: with the
// incremental SearchState at its auto-selected distance width (u8 on these
// small-diameter instances; see core/search_state.hpp and DESIGN.md §9–10),
// with the width forced to u16, and with the legacy full-recompute
// evaluation (graph copy + connectivity/diameter scan + full unrest
// recompute per proposal). Identical trajectories are asserted across all
// three — same counters, same outcome — so the reported ratios are pure
// evaluation-path speedups: `speedup` is incremental-vs-full,
// `width_speedup` is the u16/u8 storage-width ratio, and the JSON records
// the selected width and how many u8 → u16 cap promotions the run crossed
// (0 on these instances; promotions only fire when a toggle pushes some
// distance past the 8-bit cap).
//
// Usage: bench_search_json [output.json] [max_n]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json_meta.hpp"
#include "core/search.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace bncg;
using Clock = std::chrono::steady_clock;

struct Row {
  Vertex n = 0;
  std::string model;
  std::uint64_t proposals = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t accepted = 0;
  std::string width;  // auto-selected width of the incremental leg
  std::uint64_t width_promotions = 0;
  double incremental_seconds = 0.0;  // auto width (headline)
  double u16_seconds = 0.0;          // forced-u16 incremental leg
  double full_seconds = 0.0;

  [[nodiscard]] double incremental_proposals_per_sec() const {
    return static_cast<double>(proposals) / incremental_seconds;
  }
  [[nodiscard]] double full_proposals_per_sec() const {
    return static_cast<double>(proposals) / full_seconds;
  }
  [[nodiscard]] double speedup() const { return full_seconds / incremental_seconds; }
  [[nodiscard]] double width_speedup() const { return u16_seconds / incremental_seconds; }
};

template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Row measure(Vertex n, UsageCost model, std::uint64_t steps) {
  Xoshiro256ss rng(0x5EA2 ^ n);
  const Graph start = random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng);

  AnnealConfig config;
  config.cost = model;
  config.steps = steps;
  config.seed = 0xBE7C0 + n;
  // Anneal within the start graph's diameter class: proposals that keep the
  // diameter are plentiful, so the run exercises the evaluation path instead
  // of the rejection filter.
  config.target_diameter = diameter(start);

  Row row;
  row.n = n;
  row.model = model == UsageCost::Sum ? "sum" : "max";

  AnnealStats incremental_stats;
  config.evaluation = UnrestEval::Incremental;
  config.dist_width = WidthPolicy::Auto;
  std::optional<Graph> incremental_result;
  row.incremental_seconds = time_seconds(
      [&] { incremental_result = anneal_equilibrium(start, config, &incremental_stats); });
  row.width = dist_width_name(incremental_stats.dist_width);
  row.width_promotions = incremental_stats.width_promotions;

  AnnealStats u16_stats;
  config.dist_width = WidthPolicy::ForceU16;
  std::optional<Graph> u16_result;
  row.u16_seconds =
      time_seconds([&] { u16_result = anneal_equilibrium(start, config, &u16_stats); });

  AnnealStats full_stats;
  config.evaluation = UnrestEval::FullRecompute;
  std::optional<Graph> full_result;
  row.full_seconds =
      time_seconds([&] { full_result = anneal_equilibrium(start, config, &full_stats); });

  // Differential sanity on the benchmark run itself: all three paths must
  // have walked the identical trajectory.
  const auto same = [&](const AnnealStats& a, const std::optional<Graph>& ra,
                        const AnnealStats& b, const std::optional<Graph>& rb) {
    return a.proposals == b.proposals && a.evaluated == b.evaluated &&
           a.accepted == b.accepted && a.final_unrest == b.final_unrest &&
           ra.has_value() == rb.has_value() && (!ra || *ra == *rb);
  };
  if (!same(incremental_stats, incremental_result, u16_stats, u16_result) ||
      !same(incremental_stats, incremental_result, full_stats, full_result)) {
    std::cerr << "FATAL: evaluation-path trajectory mismatch at n=" << n
              << " model=" << row.model << "\n";
    std::exit(1);
  }

  row.proposals = incremental_stats.proposals;
  row.evaluated = incremental_stats.evaluated;
  row.accepted = incremental_stats.accepted;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_search.json";
  Vertex max_n = 256;
  if (argc > 2) {
    try {
      max_n = static_cast<Vertex>(std::stoul(argv[2]));
    } catch (const std::exception&) {
      std::cerr << "usage: bench_search_json [output.json] [max_n]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  for (const Vertex n : {Vertex{64}, Vertex{256}}) {
    if (n > max_n) continue;
    // Budgets sized so the slow full-recompute leg stays tolerable while
    // the one-time SearchState construction amortizes realistically.
    const std::uint64_t steps = n <= 64 ? 1200 : 300;
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const Row row = measure(n, model, steps);
      std::cout << "n=" << row.n << " model=" << row.model << " proposals=" << row.proposals
                << " evaluated=" << row.evaluated << " accepted=" << row.accepted
                << " width=" << row.width << " incremental=" << row.incremental_seconds
                << "s u16=" << row.u16_seconds << "s width_speedup=" << row.width_speedup()
                << "x full=" << row.full_seconds << "s speedup=" << row.speedup() << "x\n";
      rows.push_back(row);
    }
  }

  std::ofstream out(out_path);
  out << "{\n";
  bncg_bench::write_json_meta(out);
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"model\": \"" << r.model << "\""
        << ", \"proposals\": " << r.proposals << ", \"evaluated\": " << r.evaluated
        << ", \"accepted\": " << r.accepted << ", \"width\": \"" << r.width << "\""
        << ", \"width_promotions\": " << r.width_promotions
        << ", \"incremental_seconds\": " << r.incremental_seconds
        << ", \"u16_seconds\": " << r.u16_seconds
        << ", \"width_speedup\": " << r.width_speedup()
        << ", \"full_seconds\": " << r.full_seconds
        << ", \"incremental_proposals_per_sec\": " << r.incremental_proposals_per_sec()
        << ", \"full_proposals_per_sec\": " << r.full_proposals_per_sec()
        << ", \"speedup\": " << r.speedup() << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

// Reproduces Theorem 9 (§3.2): sum-equilibrium graphs have diameter
// 2^O(sqrt(lg n)) — i.e., far below any fixed power of n.
//
// Protocol: run sum best-response dynamics to certified equilibrium from
// several instance families and densities across a geometric range of n,
// and report the equilibrium diameter against the paper's sub-polynomial
// envelope (and against lg n, the conjectured truth). The shape to
// reproduce: equilibrium diameter stays essentially flat while n grows.
#include <cmath>
#include <iostream>

#include "core/dynamics.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

namespace {

struct Family {
  const char* name;
  Graph (*make)(Vertex, Xoshiro256ss&);
};

Graph make_sparse(Vertex n, Xoshiro256ss& rng) { return random_connected_gnm(n, n + n / 4, rng); }
Graph make_double(Vertex n, Xoshiro256ss& rng) { return random_connected_gnm(n, 2 * n, rng); }
Graph make_tree(Vertex n, Xoshiro256ss& rng) { return random_tree(n, rng); }
Graph make_ring(Vertex n, Xoshiro256ss& rng) {
  (void)rng;
  return cycle(n);
}
Graph make_ba(Vertex n, Xoshiro256ss& rng) { return barabasi_albert(n, 2, rng); }

}  // namespace

int main() {
  std::cout << "Theorem 9 [SPAA'10 §3.2]: sum equilibria have diameter 2^O(sqrt(lg n))\n";
  std::cout << "(dynamics-reached, certified equilibria; envelope = 2^sqrt(lg n), conjecture = lg n)\n";
  Xoshiro256ss rng(0xA109);
  bool all_ok = true;

  const Family families[] = {{"tree(n-1 edges)", make_tree},
                             {"cycle", make_ring},
                             {"sparse(1.25n)", make_sparse},
                             {"dense(2n)", make_double},
                             {"pref-attach(2n)", make_ba}};

  print_banner(std::cout, "equilibrium diameter vs n (3 seeds per cell, worst shown)");
  Table t({"family", "n", "start_diam", "eq_diam", "envelope 2^sqrt(lg n)", "lg n",
           "moves", "converged", "verdict"});
  for (const auto& family : families) {
    for (const Vertex n : {16u, 32u, 64u, 128u, 256u}) {
      Vertex worst_eq_diam = 0;
      Vertex start_diam = 0;
      std::uint64_t moves = 0;
      int converged = 0;
      const int seeds = 3;
      for (int seed = 0; seed < seeds; ++seed) {
        const Graph start = family.make(n, rng);
        start_diam = std::max(start_diam, diameter(start));
        DynamicsConfig config;
        config.cost = UsageCost::Sum;
        config.max_moves = 400'000;
        config.scheduler = Scheduler::RoundRobin;
        config.seed = rng();
        const DynamicsResult r = run_dynamics(start, config);
        converged += r.converged;
        moves += r.moves;
        if (r.converged) worst_eq_diam = std::max(worst_eq_diam, diameter(r.graph));
      }
      const double lg_n = std::log2(static_cast<double>(n));
      const double envelope = std::exp2(std::sqrt(lg_n));
      // The reproduction target: certified equilibria sit at or below the
      // sub-polynomial envelope (generous constant 4).
      const bool ok = converged == seeds && worst_eq_diam <= 4.0 * envelope;
      all_ok = all_ok && ok;
      t.add_row({family.name, fmt(n), fmt(start_diam), fmt(worst_eq_diam), fmt(envelope, 2),
                 fmt(lg_n, 2), fmt(moves / seeds), fmt(converged) + "/" + fmt(seeds),
                 verdict(ok)});
    }
  }
  t.print(std::cout);

  print_banner(std::cout, "shape summary");
  std::cout << "Paper: equilibrium diameter grows sub-polynomially (2^O(sqrt(lg n)));\n"
               "conjectured polylog. Measured: dynamics-reached equilibria keep\n"
               "single-digit diameters across a 16x range of n for every family, while\n"
               "start diameters grow with n — matching the paper's shape.\n";

  std::cout << "\nTheorem 9 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

// Validates the paper's proof infrastructure — Lemmas 2, 3, 6, 7, 8, 10 and
// Corollary 11 — as measurable claims across instance families. The
// reproduction thereby covers the machinery the theorems stand on, not just
// their final statements. (Lemmas 6–8 are unconditional graph facts; 2, 3,
// 10, 11 are promises about equilibria, checked on certified equilibria.)
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/lemmas.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/projective.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

using namespace bncg;

int main() {
  std::cout << "Lemma suite [SPAA'10 §2-§3]: the proofs' building blocks, validated\n";
  Xoshiro256ss rng(0xA1E5);
  bool all_ok = true;

  print_banner(std::cout, "(a) Lemmas 2 & 3 on certified max equilibria");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> eqs;
    eqs.push_back({"star(12)", star(12)});
    eqs.push_back({"double_star(2,2)", double_star(2, 2)});
    eqs.push_back({"double_star(4,6)", double_star(4, 6)});
    eqs.push_back({"complete(8)", complete(8)});
    eqs.push_back({"cycle(5)", cycle(5)});
    eqs.push_back({"rotated_torus(4)", rotated_torus(4).graph()});
    Table t({"max equilibrium", "lemma2 (ecc spread<=1)", "lemma3 (cut vertices)", "verdict"});
    for (const auto& [name, g] : eqs) {
      const bool eq = is_max_equilibrium(g);
      const bool l2 = lemma2_balanced_eccentricities(g);
      const bool l3 = lemma3_all_cut_vertices(g);
      const bool ok = eq && l2 && l3;
      all_ok = all_ok && ok;
      t.add_row({name, l2 ? "holds" : "VIOLATED", l3 ? "holds" : "VIOLATED", verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(b) Lemma 6 (unconditional): diameter-2 vertices never gain");
  {
    Table t({"family", "instances", "violations", "verdict"});
    int violations = 0;
    const int trials = 20;
    for (int i = 0; i < trials; ++i) {
      const Graph g = random_connected_gnm(14, 24 + i % 8, rng);
      if (!lemma6_diameter2_vertices_are_stable(g)) ++violations;
    }
    all_ok = all_ok && violations == 0;
    t.add_row({"gnm(14, 24..31)", fmt(trials), fmt(violations), verdict(violations == 0)});
    int structured_violations = 0;
    for (const Graph& g : {star(10), petersen(), fig3_diameter3_graph(), hypercube(4),
                           complete_bipartite(4, 5)}) {
      if (!lemma6_diameter2_vertices_are_stable(g)) ++structured_violations;
    }
    all_ok = all_ok && structured_violations == 0;
    t.add_row({"structured set", "5", fmt(structured_violations),
               verdict(structured_violations == 0)});
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) Lemma 7 gain bound & Lemma 8 girth-4 penalty");
  {
    Table t({"lemma", "instances", "violations", "verdict"});
    int l7_violations = 0;
    const int trials = 15;
    for (int i = 0; i < trials; ++i) {
      if (!lemma7_gain_bound(random_connected_gnm(13, 20, rng))) ++l7_violations;
    }
    if (!lemma7_gain_bound(fig3_diameter3_graph())) ++l7_violations;
    if (!lemma7_gain_bound(diameter3_sum_equilibrium_n8())) ++l7_violations;
    all_ok = all_ok && l7_violations == 0;
    t.add_row({"Lemma 7 (ecc-3 insertion gain)", fmt(trials + 2), fmt(l7_violations),
               verdict(l7_violations == 0)});

    int l8_violations = 0;
    for (const Graph& g : {complete_bipartite(3, 4), hypercube(3), fig3_diameter3_graph(),
                           incidence_graph(ProjectivePlane(2)), cycle(6)}) {
      if (!lemma8_distance_penalty(g)) ++l8_violations;
    }
    all_ok = all_ok && l8_violations == 0;
    t.add_row({"Lemma 8 (girth-4 swap penalty)", "5", fmt(l8_violations),
               verdict(l8_violations == 0)});
    t.print(std::cout);
  }

  print_banner(std::cout, "(d) Lemma 10 & Corollary 11 on certified sum equilibria");
  {
    struct Named {
      std::string name;
      Graph g;
    };
    std::vector<Named> eqs;
    eqs.push_back({"star(24)", star(24)});
    eqs.push_back({"diam3 witness (n=8)", diameter3_sum_equilibrium_n8()});
    eqs.push_back({"complete(12)", complete(12)});
    {
      DynamicsConfig config;
      config.max_moves = 300'000;
      const DynamicsResult r = run_dynamics(random_connected_gnm(40, 80, rng), config);
      if (r.converged) eqs.push_back({"dynamics(n=40,m=80)", r.graph});
    }
    Table t({"sum equilibrium", "lemma10 branch", "corollary 11", "verdict"});
    for (const auto& [name, g] : eqs) {
      const bool eq = is_sum_equilibrium(g);
      const Lemma10Result l10 = lemma10_cheap_edge(g, 0);
      const bool l10_ok = l10.diameter_branch || l10.cheap_edge.has_value();
      const bool c11 = corollary11_insertion_gain_bound(g);
      const bool ok = eq && l10_ok && c11;
      all_ok = all_ok && ok;
      t.add_row({name,
                 l10.diameter_branch ? "diameter <= 2 lg n"
                                     : (l10.cheap_edge ? "cheap edge found" : "NEITHER"),
                 c11 ? "holds" : "VIOLATED", verdict(ok)});
    }
    t.print(std::cout);
  }

  std::cout << "\nLemma suite overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}

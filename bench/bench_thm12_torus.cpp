// Reproduces Theorem 12 + Figure 4 (§4): the 45°-rotated torus on n = 2k²
// vertices is a max equilibrium of diameter Θ(sqrt(n)).
//
// For each k the bench certifies (exhaustively for small k, by
// vertex-transitivity — one representative agent — for larger k):
//   * diameter exactly k on n = 2k² vertices (the sqrt(n) scaling row),
//   * deletion-criticality,
//   * insertion-stability,
//   * hence max equilibrium (the paper's implication),
// and contrasts with the *standard* torus, which the paper notes is NOT a
// max equilibrium.
#include <cmath>
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace bncg;

int main() {
  std::cout << "Theorem 12 + Figure 4 [SPAA'10 §4]: rotated torus = max equilibrium, "
               "diameter Theta(sqrt(n))\n";
  bool all_ok = true;

  print_banner(std::cout, "(a) scaling: diameter k on n = 2k^2 vertices (full certification)");
  {
    Table t({"k", "n", "diameter", "diam/sqrt(n)", "del_critical", "ins_stable",
             "max_equilibrium", "time_ms", "verdict"});
    for (const Vertex k : {3u, 4u, 5u, 6u, 7u}) {
      Timer timer;
      const DiagonalTorus torus = rotated_torus(k);
      const Graph& g = torus.graph();
      const Vertex d = diameter(g);
      const bool del_crit = is_deletion_critical(g);
      const bool ins_stable = is_insertion_stable(g);
      const bool max_eq = is_max_equilibrium(g);
      const double ratio = static_cast<double>(d) / std::sqrt(static_cast<double>(g.num_vertices()));
      const bool ok = d == k && del_crit && ins_stable && max_eq;
      all_ok = all_ok && ok;
      t.add_row({fmt(k), fmt(g.num_vertices()), fmt(d), fmt(ratio, 3),
                 del_crit ? "yes" : "no", ins_stable ? "yes" : "no", max_eq ? "yes" : "no",
                 fmt(timer.millis(), 1), verdict(ok)});
    }
    t.print(std::cout);
    std::cout << "diam/sqrt(n) is the Theta(sqrt(n)) constant: k/sqrt(2k^2) = 0.707...\n";
  }

  print_banner(std::cout, "(b) larger k via vertex-transitivity (one representative agent)");
  {
    Table t({"k", "n", "diameter", "agent0_swap_stable", "verdict"});
    for (const Vertex k : {8u, 10u, 12u, 16u}) {
      const DiagonalTorus torus = rotated_torus(k);
      const Graph& g = torus.graph();
      const Vertex d = diameter(g);
      // Exhaustive moves of one representative agent; symmetry extends the
      // verdict to all (the construction is vertex-transitive — verified
      // in tests by its distance profile).
      const bool stable = vertex_is_max_stable(g, 0);
      const bool ok = d == k && stable;
      all_ok = all_ok && ok;
      t.add_row({fmt(k), fmt(g.num_vertices()), fmt(d), stable ? "yes" : "no", verdict(ok)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout, "(c) the paper's caveat: a STANDARD torus is not a max equilibrium");
  {
    Table t({"torus", "n", "max_equilibrium", "expected", "verdict"});
    for (const Vertex side : {5u, 6u, 8u}) {
      const Graph g = torus_standard(side, side);
      const bool eq = is_max_equilibrium(g);
      all_ok = all_ok && !eq;
      t.add_row({"standard " + fmt(side) + "x" + fmt(side), fmt(g.num_vertices()),
                 eq ? "yes" : "no", "no", verdict(!eq)});
    }
    t.print(std::cout);
  }

  print_banner(std::cout,
               "(d) contrast: max dynamics from random starts vs the construction");
  {
    // The Ω(√n) lower bound needs a *designed* equilibrium: selfish max
    // play from generic starts lands on small-diameter equilibria, so the
    // torus diameter is a property of the equilibrium SET, not of typical
    // play. (Mirrors the sum story: dynamics find diameter 2, Theorem 5's
    // witness needed search.)
    Table t({"source", "n", "equilibrium diameter", "certified"});
    Xoshiro256ss rng(0xA12D);
    for (const Vertex n : {32u, 72u}) {
      DynamicsConfig config;
      config.cost = UsageCost::Max;
      config.allow_neutral_deletions = true;
      config.max_moves = 200'000;
      config.seed = rng();
      const DynamicsResult r = run_dynamics(random_connected_gnm(n, 2 * n, rng), config);
      t.add_row({"max dynamics, gnm(" + fmt(n) + "," + fmt(2 * n) + ")", fmt(n),
                 r.converged ? fmt(diameter(r.graph)) : "-",
                 r.converged ? "yes" : "budget"});
    }
    for (const Vertex k : {4u, 6u}) {
      const DiagonalTorus torus = rotated_torus(k);
      t.add_row({"rotated torus k=" + fmt(k), fmt(torus.num_vertices()),
                 fmt(diameter(torus.graph())), "yes"});
    }
    t.print(std::cout);
  }

  std::cout << "\nTheorem 12 overall: " << verdict(all_ok) << "\n";
  return all_ok ? 0 : 1;
}
